package logstore

import (
	"sync/atomic"

	"past/internal/obs"
)

// Stats is the engine's live counter set. Every field is a single
// atomic, cheap enough to stay on permanently; the obs layer folds them
// into node snapshots through the obs.CounterSource interface.
type Stats struct {
	WALAppends atomic.Int64 // WAL records written
	WALBytes   atomic.Int64 // WAL bytes written (frames included)
	Fsyncs     atomic.Int64 // fsync batches issued (group commit counts one per batch)

	Checkpoints    atomic.Int64 // checkpoints written
	Compactions    atomic.Int64 // segments compacted away
	CompactedBytes atomic.Int64 // dead bytes reclaimed by compaction
	SegRotations   atomic.Int64 // segment files opened

	TornTruncations  atomic.Int64 // torn tails truncated during recovery
	RecoveredRecords atomic.Int64 // WAL records replayed at open
	RecoveryNanos    atomic.Int64 // wall time of the last recovery
	ChecksumFailures atomic.Int64 // content reads rejected by CRC or framing
}

// Counters returns the stats as obs-named counters; the segments gauge
// is added by the Store, which owns the segment table.
func (s *Stats) Counters() map[string]int64 {
	return map[string]int64{
		obs.CtrWALAppends:       s.WALAppends.Load(),
		obs.CtrWALBytes:         s.WALBytes.Load(),
		obs.CtrFsyncs:           s.Fsyncs.Load(),
		obs.CtrCheckpoints:      s.Checkpoints.Load(),
		obs.CtrCompactions:      s.Compactions.Load(),
		obs.CtrCompactedBytes:   s.CompactedBytes.Load(),
		obs.CtrSegRotations:     s.SegRotations.Load(),
		obs.CtrTornTruncations:  s.TornTruncations.Load(),
		obs.CtrRecoveredRecords: s.RecoveredRecords.Load(),
		obs.CtrRecoveryNanos:    s.RecoveryNanos.Load(),
		obs.CtrChecksumFailures: s.ChecksumFailures.Load(),
	}
}
