package logstore

// Flash is the cache engine's second tier: dedicated append-only
// segment files holding objects evicted from RAM but still warm. It
// reuses the store's segment record format (length + CRC32C + fileId +
// content), but the semantics are a cache's, not a store's:
//
//   - nothing is ever fsynced — losing flash contents costs hit rate,
//     never durability;
//   - there is no WAL and no per-record delete: space is reclaimed by
//     dropping whole segments, oldest first (FIFO over segments, the
//     same region-reclaim discipline CacheLib's flash cache uses);
//   - the object index lives in RAM, owned by the caller
//     (internal/cachengine); on open, OpenFlash rebuilds the record
//     list by scanning the segments, truncating any torn tail, so a
//     restart either recovers the flash contents or cleanly discards
//     the damaged remainder.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"past/internal/id"
)

// flashMagic versions the flash segment format; it differs from
// segMagic so an fsck of a store directory can never confuse the two.
const flashMagic = "PASTFLC1"

// FlashLoc addresses one record inside a flash segment.
type FlashLoc struct {
	Seg uint32 // segment id
	Off int64  // byte offset of the record header within the segment
	Len uint32 // content length
	CRC uint32 // CRC32C of the content
}

// RecordSize returns the bytes the record occupies in its segment.
func (l FlashLoc) RecordSize() int64 { return segRecHeaderSize + int64(l.Len) }

// FlashRecord is one recovered record, reported by OpenFlash in
// (segment, offset) order so later duplicates win when the caller
// rebuilds its index.
type FlashRecord struct {
	File id.File
	Loc  FlashLoc
}

// Flash is the on-disk half of the flash tier. Append serializes on an
// internal mutex; Read takes only a read-lock on the fd table plus a
// pread, so reads proceed concurrently with appends and with each
// other.
type Flash struct {
	dir       string
	segTarget int64

	mu    sync.Mutex // guards the append path and segment lifecycle
	segs  map[uint32]*flashSeg
	segID uint32 // active (highest) segment id
	bytes int64  // record bytes across all segments

	fds struct {
		sync.RWMutex
		m map[uint32]*os.File
	}
}

type flashSeg struct {
	off   int64 // append offset (also the valid length)
	bytes int64 // record bytes in this segment
}

// OpenFlash opens (or creates) a flash directory and scans its
// segments, returning the surviving records. A torn or corrupt record
// truncates its segment at that point — everything before it is kept,
// everything after discarded. The scan never fails the open: a flash
// tier that lost everything is empty, not broken.
func OpenFlash(dir string, segTarget int64) (*Flash, []FlashRecord, error) {
	if segTarget <= 0 {
		segTarget = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("logstore: flash dir: %w", err)
	}
	fl := &Flash{dir: dir, segTarget: segTarget, segs: make(map[uint32]*flashSeg)}
	fl.fds.m = make(map[uint32]*os.File)

	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("logstore: flash dir: %w", err)
	}
	var ids []uint32
	for _, de := range names {
		n := de.Name()
		if !strings.HasPrefix(n, "flash-") || !strings.HasSuffix(n, ".seg") {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(n, "flash-"), ".seg"), 10, 32)
		if err != nil {
			continue
		}
		ids = append(ids, uint32(v))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var recs []FlashRecord
	for _, sid := range ids {
		segRecs, valid, ok := scanFlashSegment(flashSegPath(dir, sid))
		if !ok {
			// Unreadable or wrong magic: discard the whole file.
			os.Remove(flashSegPath(dir, sid))
			continue
		}
		f, err := os.OpenFile(flashSegPath(dir, sid), os.O_RDWR, 0o644)
		if err != nil {
			continue
		}
		// Truncate a torn tail so the next append lands on a record
		// boundary.
		if fi, err := f.Stat(); err == nil && fi.Size() > valid {
			_ = f.Truncate(valid)
		}
		var segBytes int64
		for _, r := range segRecs {
			segBytes += r.Loc.RecordSize()
		}
		fl.segs[sid] = &flashSeg{off: valid, bytes: segBytes}
		fl.fds.m[sid] = f
		fl.bytes += segBytes
		if sid > fl.segID {
			fl.segID = sid
		}
		recs = append(recs, segRecs...)
	}
	return fl, recs, nil
}

// scanFlashSegment reads one segment sequentially, parsing and
// CRC-verifying every record. It returns the valid records, the byte
// offset up to which the file is well-formed, and whether the file was
// a flash segment at all.
func scanFlashSegment(path string) (recs []FlashRecord, valid int64, ok bool) {
	buf, err := os.ReadFile(path)
	if err != nil || len(buf) < fileHeaderSize || string(buf[:fileHeaderSize]) != flashMagic {
		return nil, 0, false
	}
	sid := flashSegIDFromPath(path)
	off := int64(fileHeaderSize)
	for off < int64(len(buf)) {
		rest := buf[off:]
		clen, crc, f, content, err := parseSegRecord(rest)
		if err != nil || int64(clen) > maxRecordLen || crc32Checksum(content) != crc {
			break // torn or corrupt tail: keep what parsed so far
		}
		recs = append(recs, FlashRecord{
			File: f,
			Loc:  FlashLoc{Seg: sid, Off: off, Len: clen, CRC: crc},
		})
		off += segRecHeaderSize + int64(clen)
	}
	return recs, off, true
}

func flashSegPath(dir string, seg uint32) string {
	return filepath.Join(dir, fmt.Sprintf("flash-%08d.seg", seg))
}

func flashSegIDFromPath(path string) uint32 {
	n := filepath.Base(path)
	v, _ := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(n, "flash-"), ".seg"), 10, 32)
	return uint32(v)
}

// Append writes one record to the active segment, rotating first when
// the active segment has reached its target size.
func (fl *Flash) Append(f id.File, content []byte) (FlashLoc, error) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	seg := fl.segs[fl.segID]
	if seg == nil || seg.off >= fl.segTarget {
		if err := fl.rotateLocked(); err != nil {
			return FlashLoc{}, err
		}
		seg = fl.segs[fl.segID]
	}
	fl.fds.RLock()
	fd := fl.fds.m[fl.segID]
	fl.fds.RUnlock()
	buf, crc := encodeSegRecord(f, content)
	if _, err := fd.WriteAt(buf, seg.off); err != nil {
		return FlashLoc{}, fmt.Errorf("logstore: flash append: %w", err)
	}
	loc := FlashLoc{Seg: fl.segID, Off: seg.off, Len: uint32(len(content)), CRC: crc}
	seg.off += int64(len(buf))
	seg.bytes += int64(len(buf))
	fl.bytes += int64(len(buf))
	return loc, nil
}

// rotateLocked opens the next segment. Caller holds fl.mu.
func (fl *Flash) rotateLocked() error {
	nid := fl.segID + 1
	f, err := createLogFile(flashSegPath(fl.dir, nid), flashMagic)
	if err != nil {
		return fmt.Errorf("logstore: flash segment: %w", err)
	}
	fl.segID = nid
	fl.segs[nid] = &flashSeg{off: fileHeaderSize}
	fl.fds.Lock()
	fl.fds.m[nid] = f
	fl.fds.Unlock()
	return nil
}

// Read returns the content at loc, CRC-verified. A failed read — the
// segment was dropped, the location is stale, or the bytes are corrupt
// — reports a miss, never bad data.
func (fl *Flash) Read(f id.File, loc FlashLoc) ([]byte, bool) {
	fl.fds.RLock()
	fd := fl.fds.m[loc.Seg]
	if fd == nil {
		fl.fds.RUnlock()
		return nil, false
	}
	buf := make([]byte, loc.RecordSize())
	_, err := fd.ReadAt(buf, loc.Off)
	fl.fds.RUnlock()
	if err != nil {
		return nil, false
	}
	clen, crc, rf, content, perr := parseSegRecord(buf)
	if perr != nil || rf != f || clen != loc.Len || crc != loc.CRC || crc32Checksum(content) != crc {
		return nil, false
	}
	return content, true
}

// Bytes returns the record bytes across all segments.
func (fl *Flash) Bytes() int64 {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return fl.bytes
}

// Segments returns the number of live segments.
func (fl *Flash) Segments() int {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return len(fl.segs)
}

// OldestSegment returns the lowest live segment id. It reports false
// when at most one segment exists — the active segment is never
// reclaimed out from under the appender.
func (fl *Flash) OldestSegment() (uint32, bool) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if len(fl.segs) < 2 {
		return 0, false
	}
	oldest := fl.segID
	for sid := range fl.segs {
		if sid < oldest {
			oldest = sid
		}
	}
	return oldest, true
}

// DropSegment closes and unlinks a segment, returning the record bytes
// it held. Reads racing the drop miss cleanly (the fd table entry is
// gone before the file is). Dropping the active segment is refused.
func (fl *Flash) DropSegment(seg uint32) int64 {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	s := fl.segs[seg]
	if s == nil || seg == fl.segID {
		return 0
	}
	fl.fds.Lock()
	if fd := fl.fds.m[seg]; fd != nil {
		fd.Close()
		delete(fl.fds.m, seg)
	}
	fl.fds.Unlock()
	os.Remove(flashSegPath(fl.dir, seg))
	delete(fl.segs, seg)
	fl.bytes -= s.bytes
	return s.bytes
}

// Close closes every segment file. Nothing is flushed: flash contents
// are expendable by design, and OpenFlash re-scans whatever the OS
// persisted.
func (fl *Flash) Close() error {
	fl.fds.Lock()
	for _, f := range fl.fds.m {
		f.Close()
	}
	fl.fds.m = make(map[uint32]*os.File)
	fl.fds.Unlock()
	return nil
}
