package logstore

import (
	"bytes"
	"os"
	"testing"

	"past/internal/id"
)

func flashFid(n uint64) id.File { return id.NewFile("flash", nil, n) }

func flashPayload(n uint64, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(n + uint64(i))
	}
	return b
}

func TestFlashAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fl, recs, err := OpenFlash(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh dir recovered %d records", len(recs))
	}
	locs := make(map[uint64]FlashLoc)
	for n := uint64(0); n < 50; n++ {
		loc, err := fl.Append(flashFid(n), flashPayload(n, 100+int(n)))
		if err != nil {
			t.Fatal(err)
		}
		locs[n] = loc
	}
	for n, loc := range locs {
		got, ok := fl.Read(flashFid(n), loc)
		if !ok || !bytes.Equal(got, flashPayload(n, 100+int(n))) {
			t.Fatalf("read %d: ok=%v", n, ok)
		}
	}
	// A read against the wrong file id must miss, not return bytes.
	if _, ok := fl.Read(flashFid(999), locs[0]); ok {
		t.Fatal("read with mismatched file id succeeded")
	}
	fl.Close()
}

func TestFlashRotationAndDrop(t *testing.T) {
	dir := t.TempDir()
	fl, _, err := OpenFlash(dir, 1024) // tiny target: rotate often
	if err != nil {
		t.Fatal(err)
	}
	for n := uint64(0); n < 40; n++ {
		if _, err := fl.Append(flashFid(n), flashPayload(n, 200)); err != nil {
			t.Fatal(err)
		}
	}
	if fl.Segments() < 3 {
		t.Fatalf("expected multiple segments, got %d", fl.Segments())
	}
	before := fl.Bytes()
	oldest, ok := fl.OldestSegment()
	if !ok {
		t.Fatal("no droppable segment")
	}
	freed := fl.DropSegment(oldest)
	if freed <= 0 || fl.Bytes() != before-freed {
		t.Fatalf("drop freed %d, bytes %d -> %d", freed, before, fl.Bytes())
	}
	if fl.DropSegment(oldest) != 0 {
		t.Fatal("double drop freed bytes")
	}
	fl.Close()
}

// A reopen after an unclean shutdown must recover every fully-written
// record and truncate a torn tail, never surfacing corrupt content.
func TestFlashRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	fl, _, err := OpenFlash(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var lastLoc FlashLoc
	for n := uint64(0); n < 20; n++ {
		lastLoc, err = fl.Append(flashFid(n), flashPayload(n, 300))
		if err != nil {
			t.Fatal(err)
		}
	}
	fl.Close() // no fsync; contents are whatever the OS has

	// Tear the tail: chop the last record in half.
	path := flashSegPath(dir, lastLoc.Seg)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-150); err != nil {
		t.Fatal(err)
	}

	fl2, recs, err := OpenFlash(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer fl2.Close()
	if len(recs) != 19 {
		t.Fatalf("recovered %d records, want 19 (torn tail dropped)", len(recs))
	}
	for _, r := range recs {
		got, ok := fl2.Read(r.File, r.Loc)
		if !ok {
			t.Fatalf("recovered record %s unreadable", r.File.Short())
		}
		if len(got) != 300 {
			t.Fatalf("recovered record has %d bytes", len(got))
		}
	}
	// Appending after recovery lands on a clean boundary and reads back.
	loc, err := fl2.Append(flashFid(99), flashPayload(99, 64))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := fl2.Read(flashFid(99), loc); !ok || !bytes.Equal(got, flashPayload(99, 64)) {
		t.Fatal("append after recovery unreadable")
	}
}

// A bit flip inside a record body truncates the scan at that record:
// earlier records survive, the damaged one and everything after are
// discarded.
func TestFlashRecoveryDiscardsCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	fl, _, err := OpenFlash(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var locs []FlashLoc
	for n := uint64(0); n < 10; n++ {
		loc, err := fl.Append(flashFid(n), flashPayload(n, 100))
		if err != nil {
			t.Fatal(err)
		}
		locs = append(locs, loc)
	}
	fl.Close()

	// Flip a byte inside record 5's content.
	path := flashSegPath(dir, locs[5].Seg)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[locs[5].Off+int64(segRecHeaderSize)+10] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	fl2, recs, err := OpenFlash(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer fl2.Close()
	if len(recs) != 5 {
		t.Fatalf("recovered %d records, want 5 (corrupt record truncates)", len(recs))
	}
	for i, r := range recs {
		if _, ok := fl2.Read(r.File, r.Loc); !ok {
			t.Fatalf("surviving record %d unreadable", i)
		}
	}
}

// A non-flash file in the directory (wrong magic) is discarded, not
// scanned.
func TestFlashOpenDiscardsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(flashSegPath(dir, 7), []byte("NOTFLASH-garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	fl, recs, err := OpenFlash(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if len(recs) != 0 || fl.Segments() != 0 {
		t.Fatalf("foreign file produced records (%d) or segments (%d)", len(recs), fl.Segments())
	}
	if _, err := os.Stat(flashSegPath(dir, 7)); !os.IsNotExist(err) {
		t.Fatal("foreign file not removed")
	}
}
