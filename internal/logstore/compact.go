package logstore

import (
	"fmt"
	"os"

	"past/internal/id"
)

// CompactOnce rewrites the lowest-numbered sealed segment whose
// live-bytes fraction is below Options.CompactRatio: every live record
// is re-appended to the active segment (with a relocate WAL record),
// the relocations are fsynced, and the old file is deleted. Returns
// whether a segment was compacted. Reads proceed throughout — a Get
// racing a relocation retries against the updated location.
func (s *Store) CompactOnce() (bool, error) {
	if s.opts.CompactRatio < 0 || s.closed.Load() {
		return false, nil
	}
	cand, total, ok := s.pickCompactionCandidate()
	if !ok {
		return false, nil
	}

	s.segFDs.RLock()
	fd := s.segFDs.m[cand]
	s.segFDs.RUnlock()
	if fd == nil {
		return false, nil
	}

	// Scan the sealed segment (its records are immutable) and relocate
	// every record the index still points at.
	end := fileHeaderSize + total
	for off := int64(fileHeaderSize); off < end; {
		hdr := make([]byte, segRecHeaderSize)
		if _, err := fd.ReadAt(hdr, off); err != nil {
			break // torn sealed tail; everything past it is dead
		}
		clen, _, f, perr := parseSegHeader(hdr)
		if perr != nil || int64(clen) > maxRecordLen {
			break
		}
		recSize := segRecHeaderSize + int64(clen)
		if off+recSize > end {
			break
		}
		sh := s.shardOf(f)
		sh.mu.RLock()
		r, live := sh.entries[f]
		liveHere := live && r.hasContent && r.loc.Seg == cand && r.loc.Off == off
		sh.mu.RUnlock()
		if liveHere {
			if err := s.relocate(f, cand, off); err != nil {
				return false, err
			}
		}
		off += recSize
	}

	// Relocation WAL records and copied content must be durable before
	// the only other copy disappears. Each relocated record is either
	// in the current active segment (synced here) or in a segment that
	// was sealed since — and rotateSegmentLocked fsyncs a segment
	// before sealing it, so those are already on disk.
	if err := s.fsyncFiles(); err != nil {
		return false, err
	}

	s.log.Lock()
	if s.log.segLive[cand] != 0 {
		// A concurrent Add cannot target a sealed segment, so this only
		// means a relocation was skipped; leave the file for a later pass.
		s.log.Unlock()
		return false, nil
	}
	delete(s.log.segLive, cand)
	delete(s.log.segTotal, cand)
	s.log.Unlock()

	s.segFDs.Lock()
	if f := s.segFDs.m[cand]; f != nil {
		f.Close()
		delete(s.segFDs.m, cand)
	}
	s.segFDs.Unlock()
	if err := os.Remove(segPath(s.dir, cand)); err != nil {
		return false, fmt.Errorf("logstore: remove compacted segment: %w", err)
	}
	s.stats.Compactions.Add(1)
	s.stats.CompactedBytes.Add(total)
	return true, nil
}

// pickCompactionCandidate selects the lowest sealed segment under the
// live-ratio threshold (deterministic, so tests can drive it).
func (s *Store) pickCompactionCandidate() (seg uint32, total int64, ok bool) {
	s.log.Lock()
	defer s.log.Unlock()
	best := uint32(0)
	found := false
	for sid, tot := range s.log.segTotal {
		if sid == s.log.segID || tot <= 0 {
			continue
		}
		live := s.log.segLive[sid]
		if live > 0 && float64(live)/float64(tot) >= s.opts.CompactRatio {
			continue
		}
		if !found || sid < best {
			best, total, found = sid, tot, true
		}
	}
	return best, total, found
}

// relocate copies one live record from a sealed segment to the active
// one: re-read (with CRC check), re-append, WAL relocate record, index
// update. Holding s.log across the re-check makes it atomic against a
// concurrent Remove of the same file.
func (s *Store) relocate(f id.File, seg uint32, off int64) error {
	s.log.Lock()
	defer s.log.Unlock()
	if s.log.failed != nil {
		return s.log.failed
	}
	sh := s.shardOf(f)
	sh.mu.RLock()
	r, ok := sh.entries[f]
	stillHere := ok && r.hasContent && r.loc.Seg == seg && r.loc.Off == off
	var oldLoc location
	if stillHere {
		oldLoc = r.loc
	}
	sh.mu.RUnlock()
	if !stillHere {
		return nil // removed or already moved; nothing to do
	}
	content, okRead := s.readContent(f, oldLoc)
	if !okRead {
		// The only copy is unreadable; the entry keeps its (dead)
		// location and the segment stays pinned by its live count.
		return nil
	}
	newLoc, err := s.appendSegmentLocked(f, content)
	if err != nil {
		return err
	}
	if _, err := s.appendWALLocked(walRecord{typ: recRelocate, file: f, loc: newLoc}); err != nil {
		return err
	}
	sh.mu.Lock()
	r.loc = newLoc
	sh.mu.Unlock()
	s.log.segLive[seg] -= oldLoc.recordSize()
	s.log.segLive[newLoc.Seg] += newLoc.recordSize()
	return nil
}
