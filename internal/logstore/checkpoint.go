package logstore

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"

	"past/internal/store"
)

// checkpointData is the gob-encoded metadata snapshot. WALSeq names the
// first WAL file recovery must replay: everything in lower-numbered
// files is already folded into the snapshot.
type checkpointData struct {
	Capacity int64
	WALSeq   uint64
	Entries  []checkpointEntry
	Pointers []store.Pointer
}

// checkpointEntry is one index entry with its content location.
type checkpointEntry struct {
	Entry      store.Entry // Content always nil
	HasContent bool
	Seg        uint32
	Off        int64
	Len        uint32
	CRC        uint32
}

// Checkpoint snapshots the metadata index, rotates the WAL, and deletes
// the superseded WAL files. Concurrent calls return immediately
// (ckptRunning is a fast-path skip); the body itself is additionally
// serialized under ckptMu against the final checkpoint in Close.
func (s *Store) Checkpoint() error {
	if s.closed.Load() {
		return errClosed
	}
	if !s.ckptRunning.CompareAndSwap(false, true) {
		return nil
	}
	defer s.ckptRunning.Store(false)
	return s.checkpoint()
}

// checkpoint is the body, also called from Close. ckptMu serializes
// every caller: the ckptRunning gate alone does not cover Close, and
// two interleaved checkpoints can commit a stale snapshot after the
// newer one already deleted the WAL files its WALSeq points at.
func (s *Store) checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	// Everything the snapshot will claim must be durable first; then
	// rotation can move the write point to a fresh WAL file. syncMu
	// keeps a concurrent group-commit leader from fsyncing the file
	// being swapped out.
	s.syncMu.Lock()
	s.log.Lock()
	if s.log.failed != nil {
		err := s.log.failed
		s.log.Unlock()
		s.syncMu.Unlock()
		return err
	}
	if s.log.seg != nil {
		if err := s.log.seg.Sync(); err != nil {
			s.log.Unlock()
			s.syncMu.Unlock()
			return fmt.Errorf("logstore: checkpoint segment sync: %w", err)
		}
	}
	if err := s.log.wal.Sync(); err != nil {
		s.log.Unlock()
		s.syncMu.Unlock()
		return fmt.Errorf("logstore: checkpoint WAL sync: %w", err)
	}
	s.stats.Fsyncs.Add(1)

	data := checkpointData{Capacity: s.opts.Capacity, WALSeq: s.log.walSeq + 1}
	for i := range s.shards {
		sh := &s.shards[i]
		for _, r := range sh.entries {
			data.Entries = append(data.Entries, checkpointEntry{
				Entry: r.meta, HasContent: r.hasContent,
				Seg: r.loc.Seg, Off: r.loc.Off, Len: r.loc.Len, CRC: r.loc.CRC,
			})
		}
		for _, p := range sh.pointers {
			data.Pointers = append(data.Pointers, p)
		}
	}

	newWAL, err := createLogFile(walPath(s.dir, data.WALSeq), walMagic)
	if err != nil {
		s.log.Unlock()
		s.syncMu.Unlock()
		return fmt.Errorf("logstore: checkpoint rotate: %w", err)
	}
	// The new WAL's directory entry must be durable before any record
	// appended to it is acknowledged.
	syncDir(s.dir)
	oldWAL, oldSeq := s.log.wal, s.log.walSeq
	s.log.wal = newWAL
	s.log.walSeq = data.WALSeq
	s.log.walOff = fileHeaderSize
	s.log.walSince = 0
	durable := s.lsn.Load()
	s.log.Unlock()

	// Every record up to the rotation point was just fsynced: advance
	// the group-commit watermark so queued committers return.
	s.commit.Lock()
	if durable > s.commit.synced {
		s.commit.synced = durable
	}
	s.commit.cond.Broadcast()
	s.commit.Unlock()
	oldWAL.Close()
	s.syncMu.Unlock()

	if err := writeCheckpointFile(s.dir, &data); err != nil {
		return err
	}
	// The snapshot is durable; WAL files below WALSeq are dead weight.
	for seq := oldSeq; seq > 0; seq-- {
		p := walPath(s.dir, seq)
		if err := os.Remove(p); err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				break // older files were already cleaned up
			}
			break
		}
	}
	s.stats.Checkpoints.Add(1)
	return nil
}

// writeCheckpointFile writes the snapshot via temp-file + fsync +
// rename, so a crash leaves either the old or the new checkpoint.
func writeCheckpointFile(dir string, data *checkpointData) error {
	tmp, err := os.CreateTemp(dir, "checkpoint-*")
	if err != nil {
		return fmt.Errorf("logstore: checkpoint: %w", err)
	}
	if err := gob.NewEncoder(tmp).Encode(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("logstore: checkpoint encode: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("logstore: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("logstore: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), checkpointPath(dir)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("logstore: checkpoint rename: %w", err)
	}
	syncDir(dir)
	return nil
}

// loadCheckpointFile reads and decodes the checkpoint, if present.
// A missing file returns (nil, nil).
func loadCheckpointFile(dir string) (*checkpointData, error) {
	raw, err := os.Open(checkpointPath(dir))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("logstore: open checkpoint: %w", err)
	}
	defer raw.Close()
	var data checkpointData
	if err := gob.NewDecoder(raw).Decode(&data); err != nil {
		return nil, fmt.Errorf("logstore: corrupt checkpoint in %s: %w", dir, err)
	}
	return &data, nil
}
