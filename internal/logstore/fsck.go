package logstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"strings"

	"past/internal/id"
)

// FsckReport is the result of an offline verification pass over a
// logstore directory. Errors are hard corruption (fsck exits non-zero
// on them); Warnings are crash artifacts the engine recovers from
// (torn tails, content lost to an unsynced crash, orphan segments).
type FsckReport struct {
	Dir string

	HasCheckpoint bool
	WALFiles      int
	WALRecords    int
	TornWALFiles  int   // WAL files ending in a torn tail
	TornWALBytes  int64 // bytes in those tails

	Segments       int
	SegmentRecords int
	DeadRecords    int   // valid records no entry references
	TornSegBytes   int64 // trailing bytes of the active segment that parse as no record

	Entries        int
	Pointers       int
	MissingContent int // entries whose content is absent (crash artifact)

	OrphanSegments int // segment files no entry references (not the active one)

	Errors   []string
	Warnings []string
}

// OK reports whether the directory is free of corruption.
func (r *FsckReport) OK() bool { return len(r.Errors) == 0 }

func (r *FsckReport) errf(format string, args ...any) {
	r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
}

func (r *FsckReport) warnf(format string, args ...any) {
	r.Warnings = append(r.Warnings, fmt.Sprintf(format, args...))
}

// String renders the report as a human-readable summary.
func (r *FsckReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fsck %s\n", r.Dir)
	fmt.Fprintf(&b, "  checkpoint: present=%v\n", r.HasCheckpoint)
	fmt.Fprintf(&b, "  wal: %d file(s), %d record(s), %d torn tail(s) (%d bytes)\n",
		r.WALFiles, r.WALRecords, r.TornWALFiles, r.TornWALBytes)
	fmt.Fprintf(&b, "  segments: %d file(s), %d record(s), %d dead, %d torn tail bytes, %d orphan file(s)\n",
		r.Segments, r.SegmentRecords, r.DeadRecords, r.TornSegBytes, r.OrphanSegments)
	fmt.Fprintf(&b, "  index: %d entries, %d pointers, %d missing content\n",
		r.Entries, r.Pointers, r.MissingContent)
	for _, w := range r.Warnings {
		fmt.Fprintf(&b, "  warning: %s\n", w)
	}
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "  ERROR: %s\n", e)
	}
	if r.OK() {
		b.WriteString("  RESULT: OK\n")
	} else {
		b.WriteString("  RESULT: CORRUPT\n")
	}
	return b.String()
}

// Fsck verifies a logstore directory without opening it for writing:
// checkpoint decodability, WAL record framing and checksums, segment
// record checksums, and the cross-references between the recovered
// index and the segments. It never modifies the directory.
func Fsck(dir string) (*FsckReport, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("logstore: fsck %s: %w", dir, err)
	}
	r := &FsckReport{Dir: dir}

	// Rebuild the index exactly as recovery would, but read-only.
	type idxEntry struct {
		size       int64
		hasContent bool
		loc        location
	}
	entries := make(map[id.File]idxEntry)
	pointers := make(map[id.File]struct{})

	ckpt, err := loadCheckpointFile(dir)
	if err != nil {
		r.errf("%v", err)
	}
	firstSeq := uint64(1)
	if ckpt != nil {
		r.HasCheckpoint = true
		firstSeq = ckpt.WALSeq
		for _, ce := range ckpt.Entries {
			entries[ce.Entry.File] = idxEntry{
				size: ce.Entry.Size, hasContent: ce.HasContent,
				loc: location{Seg: ce.Seg, Off: ce.Off, Len: ce.Len, CRC: ce.CRC},
			}
		}
		for _, p := range ckpt.Pointers {
			pointers[p.File] = struct{}{}
		}
	}

	seqs, err := listNumbered(dir, "wal-", ".log")
	if err != nil {
		return nil, err
	}
	var replay []uint64
	for _, seq := range seqs {
		if seq >= firstSeq {
			replay = append(replay, seq)
		}
	}
	if len(replay) == 0 && ckpt == nil {
		r.warnf("no checkpoint and no WAL: empty or foreign directory")
	}
	for i, seq := range replay {
		isLast := i == len(replay)-1
		r.WALFiles++
		path := walPath(dir, seq)
		data, err := os.ReadFile(path)
		if err != nil {
			r.errf("read %s: %v", path, err)
			continue
		}
		if len(data) < fileHeaderSize || string(data[:fileHeaderSize]) != walMagic {
			if isLast {
				r.TornWALFiles++
				r.TornWALBytes += int64(len(data))
				r.warnf("%s: torn header (crash during WAL creation)", path)
			} else {
				r.errf("%s: bad WAL header", path)
			}
			continue
		}
		off := int64(fileHeaderSize)
		for {
			rec, n, ok, derr := nextWALRecord(data, off)
			if derr != nil {
				r.errf("%s at offset %d: %v", path, off, derr)
				break
			}
			if !ok {
				if tail := int64(len(data)) - off; tail > 0 {
					if isLast {
						r.TornWALFiles++
						r.TornWALBytes += tail
						r.warnf("%s: torn tail, %d bytes after offset %d", path, tail, off)
					} else {
						r.errf("%s: invalid record at offset %d in non-final WAL", path, off)
					}
				}
				break
			}
			r.WALRecords++
			switch rec.typ {
			case recAdd:
				entries[rec.file] = idxEntry{size: rec.entry.Size, hasContent: rec.hasContent, loc: rec.loc}
			case recRemove:
				delete(entries, rec.file)
			case recSetPointer:
				pointers[rec.file] = struct{}{}
			case recRemovePointer:
				delete(pointers, rec.file)
			case recRelocate:
				if e, ok := entries[rec.file]; ok && e.hasContent {
					e.loc = rec.loc
					entries[rec.file] = e
				}
			}
			off += n
		}
	}
	r.Entries = len(entries)
	r.Pointers = len(pointers)

	// Scan segments: structure and checksums of every record, and which
	// records the index references.
	segIDs, err := listNumbered(dir, "seg-", ".seg")
	if err != nil {
		return nil, err
	}
	var active uint32
	if len(segIDs) > 0 {
		active = uint32(segIDs[len(segIDs)-1])
	}
	segRecords := make(map[uint32]map[int64]bool) // seg -> offset -> crc ok
	for _, sid64 := range segIDs {
		sid := uint32(sid64)
		r.Segments++
		path := segPath(dir, sid)
		data, err := os.ReadFile(path)
		if err != nil {
			r.errf("read %s: %v", path, err)
			continue
		}
		recs := make(map[int64]bool)
		segRecords[sid] = recs
		if len(data) < fileHeaderSize || string(data[:fileHeaderSize]) != segMagic {
			if sid == active {
				r.warnf("%s: torn header (crash during segment creation)", path)
				r.TornSegBytes += int64(len(data))
			} else {
				r.errf("%s: bad segment header", path)
			}
			continue
		}
		off := int64(fileHeaderSize)
		for off < int64(len(data)) {
			rest := data[off:]
			if len(rest) < segRecHeaderSize {
				r.TornSegBytes += int64(len(rest))
				if sid != active {
					r.warnf("%s: %d trailing bytes (dead tail of sealed segment)", path, len(rest))
				}
				break
			}
			clen := binary.LittleEndian.Uint32(rest[0:])
			if clen > maxRecordLen || int64(len(rest)-segRecHeaderSize) < int64(clen) {
				r.TornSegBytes += int64(len(rest))
				if sid != active {
					r.warnf("%s: unparseable tail at offset %d in sealed segment", path, off)
				}
				break
			}
			_, crc, _, content, _ := parseSegRecord(rest[:segRecHeaderSize+int(clen)])
			recs[off] = crc32Checksum(content) == crc
			r.SegmentRecords++
			off += segRecHeaderSize + int64(clen)
		}
	}

	// Cross-reference: every entry's content must be a CRC-valid record
	// at its recorded location. An absent record or short segment is a
	// crash artifact (the engine serves metadata only); a present record
	// whose checksum fails is corruption.
	for f, e := range entries {
		if !e.hasContent {
			continue
		}
		recs, haveSeg := segRecords[e.loc.Seg]
		if !haveSeg {
			r.MissingContent++
			r.warnf("entry %s: segment %d missing (content lost to crash)", shortFile(f), e.loc.Seg)
			continue
		}
		okCRC, haveRec := recs[e.loc.Off]
		if !haveRec {
			r.MissingContent++
			r.warnf("entry %s: no record at seg %d offset %d (content lost to crash)", shortFile(f), e.loc.Seg, e.loc.Off)
			continue
		}
		if !okCRC {
			r.errf("entry %s: checksum mismatch at seg %d offset %d", shortFile(f), e.loc.Seg, e.loc.Off)
		}
	}

	// Dead records and orphan segments.
	for sid, recs := range segRecords {
		refs := 0
		for _, e := range entries {
			if e.hasContent && e.loc.Seg == sid {
				if _, ok := recs[e.loc.Off]; ok {
					refs++
				}
			}
		}
		r.DeadRecords += len(recs) - refs
		if refs == 0 && sid != active {
			r.OrphanSegments++
			r.warnf("seg %d: no referenced records (compaction leftover)", sid)
		}
	}
	return r, nil
}

func shortFile(f id.File) string { return f.Short() }
