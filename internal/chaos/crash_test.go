package chaos

import "testing"

func TestRunCrashInvariantsHold(t *testing.T) {
	rep, err := RunCrash(CrashConfig{Dir: t.TempDir() + "/ls", Seed: 1, Lives: 4, OpsPer: 120})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecoveredOK != rep.Lives {
		t.Fatalf("recovered %d/%d lives", rep.RecoveredOK, rep.Lives)
	}
	if !rep.FsckOK {
		t.Fatal("final fsck failed")
	}
	if rep.Ops == 0 || rep.Fingerprint == "" {
		t.Fatalf("degenerate soak: %+v", rep)
	}
}

func TestRunCrashDeterministic(t *testing.T) {
	a, err := RunCrash(CrashConfig{Dir: t.TempDir() + "/a", Seed: 42, Lives: 3, OpsPer: 80})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCrash(CrashConfig{Dir: t.TempDir() + "/b", Seed: 42, Lives: 3, OpsPer: 80})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint || a.Ops != b.Ops || a.Truncated != b.Truncated {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c, err := RunCrash(CrashConfig{Dir: t.TempDir() + "/c", Seed: 43, Lives: 3, OpsPer: 80})
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Fatal("different seeds produced identical fingerprints")
	}
}
