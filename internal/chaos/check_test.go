package chaos

import (
	"testing"

	"past/internal/id"
)

// fakeState is a hand-built ClusterState for checker unit tests.
type fakeState struct {
	closest  []id.Node
	alive    map[id.Node]bool
	replicas map[id.Node]bool // nodes holding a replica of the one file
	primary  map[id.Node]bool
	pointers map[id.Node]id.Node
}

func (s *fakeState) GlobalClosest(key id.Node, k int) []id.Node { return s.closest }
func (s *fakeState) Alive(nid id.Node) bool                     { return s.alive[nid] }
func (s *fakeState) NodeHasReplica(nid id.Node, f id.File) bool { return s.replicas[nid] }
func (s *fakeState) NodePointer(nid id.Node, f id.File) (id.Node, bool) {
	t, ok := s.pointers[nid]
	return t, ok
}
func (s *fakeState) ReplicaHolders(f id.File) []id.Node {
	var out []id.Node
	for n, has := range s.replicas {
		if has && s.alive[n] {
			out = append(out, n)
		}
	}
	return out
}
func (s *fakeState) PrimaryHolders(f id.File) []id.Node {
	var out []id.Node
	for n, p := range s.primary {
		if p && s.alive[n] {
			out = append(out, n)
		}
	}
	return out
}

func nodeN(v uint64) id.Node { return id.NodeFromUint64(v) }

func healthyState() *fakeState {
	n1, n2, n3 := nodeN(1), nodeN(2), nodeN(3)
	return &fakeState{
		closest:  []id.Node{n1, n2, n3},
		alive:    map[id.Node]bool{n1: true, n2: true, n3: true},
		replicas: map[id.Node]bool{n1: true, n2: true, n3: true},
		primary:  map[id.Node]bool{n1: true, n2: true, n3: true},
		pointers: map[id.Node]id.Node{},
	}
}

func oneFile() []id.File { return []id.File{id.NewFile("f", nil, 1)} }

func TestCheckerHealthy(t *testing.T) {
	ck := &Checker{K: 3}
	s := healthyState()
	if v := ck.CheckDurability(s, oneFile(), 1); len(v) != 0 {
		t.Fatalf("healthy durability: %v", v)
	}
	if v := ck.CheckConverged(s, oneFile(), 1); len(v) != 0 {
		t.Fatalf("healthy convergence: %v", v)
	}
}

func TestCheckerPointerCoverage(t *testing.T) {
	// n3 covers its slot with a pointer to a live out-of-set holder n4:
	// the paper's diverted replica, fully legal.
	ck := &Checker{K: 3}
	s := healthyState()
	n3, n4 := nodeN(3), nodeN(4)
	s.replicas[n3] = false
	s.primary[n3] = false
	s.alive[n4] = true
	s.replicas[n4] = true
	s.primary[n4] = false // diverted-in at n4
	s.pointers[n3] = n4
	if v := ck.CheckConverged(s, oneFile(), 1); len(v) != 0 {
		t.Fatalf("pointer coverage must satisfy the invariant: %v", v)
	}
}

func TestCheckerLost(t *testing.T) {
	ck := &Checker{K: 3}
	s := healthyState()
	for n := range s.alive {
		s.alive[n] = false
	}
	var seen []Violation
	ck.OnViolation = func(v Violation) { seen = append(seen, v) }
	v := ck.CheckDurability(s, oneFile(), 7)
	if len(v) != 1 || v[0].Kind != ViolationLost || v[0].Epoch != 7 || v[0].Actual != 0 {
		t.Fatalf("violations = %v", v)
	}
	if len(seen) != 1 {
		t.Fatal("OnViolation hook did not fire")
	}
	if v[0].String() == "" {
		t.Fatal("violation must render")
	}
}

func TestCheckerUnderReplicated(t *testing.T) {
	ck := &Checker{K: 3}
	s := healthyState()
	s.replicas[nodeN(3)] = false
	s.primary[nodeN(3)] = false
	v := ck.CheckConverged(s, oneFile(), 2)
	if len(v) != 1 || v[0].Kind != ViolationUnderReplicated {
		t.Fatalf("violations = %v", v)
	}
	if v[0].Expected != 3 || v[0].Actual != 2 {
		t.Fatalf("accounting = expected %d actual %d", v[0].Expected, v[0].Actual)
	}
}

func TestCheckerDanglingPointer(t *testing.T) {
	ck := &Checker{K: 3}
	s := healthyState()
	n3, n4 := nodeN(3), nodeN(4)
	s.replicas[n3] = false
	s.primary[n3] = false
	s.pointers[n3] = n4 // n4 is dead
	s.alive[n4] = false
	v := ck.CheckConverged(s, oneFile(), 3)
	kinds := map[ViolationKind]int{}
	for _, x := range v {
		kinds[x.Kind]++
	}
	if kinds[ViolationDanglingPointer] != 1 || kinds[ViolationUnderReplicated] != 1 {
		t.Fatalf("violations = %v", v)
	}
}

func TestCheckerStrayReplica(t *testing.T) {
	ck := &Checker{K: 3}
	s := healthyState()
	n5 := nodeN(5)
	s.alive[n5] = true
	s.replicas[n5] = true
	s.primary[n5] = true // unreferenced primary outside the set
	v := ck.CheckConverged(s, oneFile(), 4)
	if len(v) != 1 || v[0].Kind != ViolationStray || v[0].Node != n5 {
		t.Fatalf("violations = %v", v)
	}
	// The same holder referenced by an in-set pointer is NOT stray.
	n3 := nodeN(3)
	s.replicas[n3] = false
	s.primary[n3] = false
	s.pointers[n3] = n5
	if v := ck.CheckConverged(s, oneFile(), 5); len(v) != 0 {
		t.Fatalf("referenced holder flagged: %v", v)
	}
}
