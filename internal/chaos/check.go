package chaos

import (
	"fmt"

	"past/internal/id"
)

// The invariant checker walks live cluster state and asserts the
// paper's safety properties (sections 2.3 and 3.5). It is omniscient —
// it sees through partitions — because the properties it checks are
// global: a file is durable as long as SOME live node holds a replica,
// whichever side of a partition that node is on.

// ClusterState is the checker's read-only window onto a cluster.
// past.Cluster implements it; a TCP harness can provide its own.
type ClusterState interface {
	// GlobalClosest returns the k live nodes numerically closest to key
	// (ground truth, by brute force).
	GlobalClosest(key id.Node, k int) []id.Node
	// Alive reports whether a node is up.
	Alive(nid id.Node) bool
	// NodeHasReplica reports whether a node holds a replica (primary or
	// diverted) of f.
	NodeHasReplica(nid id.Node, f id.File) bool
	// NodePointer returns the target of a node's diverted-replica
	// pointer for f, if it has one.
	NodePointer(nid id.Node, f id.File) (id.Node, bool)
	// ReplicaHolders returns every live node holding a replica of f.
	ReplicaHolders(f id.File) []id.Node
	// PrimaryHolders returns every live node holding a PRIMARY replica
	// of f (diverted-in copies are their referrer's charge and are
	// excluded from the stray check).
	PrimaryHolders(f id.File) []id.Node
}

// ViolationKind classifies an invariant violation.
type ViolationKind string

// Violation kinds.
const (
	// ViolationLost: no live node holds any replica — the file is
	// unreachable. The property the paper calls durability.
	ViolationLost ViolationKind = "lost"
	// ViolationUnderReplicated: fewer than k of the k closest live
	// nodes hold a replica or a valid pointer (checked after repair
	// has had a chance to run).
	ViolationUnderReplicated ViolationKind = "under-replicated"
	// ViolationDanglingPointer: one of the k closest nodes points at a
	// dead node or at a node that no longer holds the replica.
	ViolationDanglingPointer ViolationKind = "dangling-pointer"
	// ViolationStray: a node outside the replica set holds a primary
	// replica nobody references — storage the maintenance protocol
	// should have migrated or discarded.
	ViolationStray ViolationKind = "stray-replica"
	// ViolationFragmentsLost: an erasure-coded RS(m, n) object has fewer
	// than m distinct fragment indices on live nodes — it cannot be
	// reconstructed, whatever the fragment map says. The EC analogue of
	// ViolationLost.
	ViolationFragmentsLost ViolationKind = "fragments-lost"
	// ViolationFragmentMissing: a fragment index has no live holder
	// after repair has had a chance to run. The object is still
	// reconstructible; the lazy repair queue owes it a fragment. The EC
	// analogue of ViolationUnderReplicated.
	ViolationFragmentMissing ViolationKind = "fragment-missing"
)

// FragmentState is the optional erasure-coding extension of
// ClusterState: a cluster that supports EC mode exposes coding
// parameters and live fragment placement, and the checker adds the
// fragment-loss invariant (object reconstructible iff >= m fragments
// live) to both the durability and the convergence passes. Clusters
// without EC simply don't implement it.
type FragmentState interface {
	// ECFile reports a file's coding parameters (data shards m, total
	// shards m+n) if it was stored erasure-coded. Implementations may
	// consult dead nodes for the (static) parameters.
	ECFile(f id.File) (data, total int, ok bool)
	// FragmentHolders returns the LIVE nodes holding each fragment
	// index of f.
	FragmentHolders(f id.File) map[int][]id.Node
}

// ecShape resolves a file's coding parameters if the state supports
// fragments and the file is erasure-coded.
func ecShape(s ClusterState, f id.File) (FragmentState, int, int, bool) {
	fs, ok := s.(FragmentState)
	if !ok {
		return nil, 0, 0, false
	}
	data, total, ok := fs.ECFile(f)
	return fs, data, total, ok
}

// Violation is one structured invariant failure: which file, where, and
// the expected-vs-actual replica accounting at that epoch.
type Violation struct {
	Epoch    int
	Kind     ViolationKind
	File     id.File
	Node     id.Node // the offending node (zero for whole-file violations)
	Expected int
	Actual   int
}

// String renders the violation in a stable, fingerprintable form.
func (v Violation) String() string {
	return fmt.Sprintf("epoch=%d kind=%s file=%s node=%s expected=%d actual=%d",
		v.Epoch, v.Kind, v.File.Short(), v.Node.Short(), v.Expected, v.Actual)
}

// Checker validates the replica invariants over a set of confirmed
// files.
type Checker struct {
	// K is the replication factor the cluster was built with.
	K int
	// OnViolation, if set, observes each violation as it is found (the
	// metrics hook).
	OnViolation func(Violation)
}

func (ck *Checker) emit(out []Violation, v Violation) []Violation {
	if ck.OnViolation != nil {
		ck.OnViolation(v)
	}
	return append(out, v)
}

// CheckDurability asserts the mid-schedule safety property: every file
// retains at least one reachable replica. It is the only property that
// must hold while faults are active; replica counts may legitimately
// sag below k until repair catches up.
func (ck *Checker) CheckDurability(s ClusterState, files []id.File, epoch int) []Violation {
	var out []Violation
	for _, f := range files {
		if len(s.ReplicaHolders(f)) == 0 {
			out = ck.emit(out, Violation{
				Epoch: epoch, Kind: ViolationLost, File: f, Expected: 1, Actual: 0,
			})
		}
		// Erasure-coded object: losing the map is covered above (map
		// replicas are replicas); the content itself survives iff at
		// least m distinct fragment indices are on live nodes.
		if fs, data, _, isEC := ecShape(s, f); isEC {
			if live := len(fs.FragmentHolders(f)); live < data {
				out = ck.emit(out, Violation{
					Epoch: epoch, Kind: ViolationFragmentsLost, File: f,
					Expected: data, Actual: live,
				})
			}
		}
	}
	return out
}

// CheckConverged asserts the post-repair invariant: each of the k live
// nodes closest to a fileId holds a replica or a pointer to a live
// holder, every pointer resolves, and no unreferenced primary replicas
// linger outside the replica set.
func (ck *Checker) CheckConverged(s ClusterState, files []id.File, epoch int) []Violation {
	var out []Violation
	for _, f := range files {
		holders := s.ReplicaHolders(f)
		if len(holders) == 0 {
			out = ck.emit(out, Violation{
				Epoch: epoch, Kind: ViolationLost, File: f, Expected: 1, Actual: 0,
			})
			continue
		}
		closest := s.GlobalClosest(f.Key(), ck.K)
		inSet := make(map[id.Node]bool, len(closest))
		referenced := make(map[id.Node]bool)
		covered := 0
		for _, nid := range closest {
			inSet[nid] = true
			if s.NodeHasReplica(nid, f) {
				covered++
				continue
			}
			if tgt, ok := s.NodePointer(nid, f); ok {
				if s.Alive(tgt) && s.NodeHasReplica(tgt, f) {
					referenced[tgt] = true
					covered++
					continue
				}
				out = ck.emit(out, Violation{
					Epoch: epoch, Kind: ViolationDanglingPointer, File: f, Node: nid,
					Expected: len(closest), Actual: covered,
				})
			}
		}
		if covered < len(closest) {
			out = ck.emit(out, Violation{
				Epoch: epoch, Kind: ViolationUnderReplicated, File: f,
				Expected: len(closest), Actual: covered,
			})
		}
		for _, h := range s.PrimaryHolders(f) {
			if !inSet[h] && !referenced[h] {
				out = ck.emit(out, Violation{
					Epoch: epoch, Kind: ViolationStray, File: f, Node: h,
					Expected: 0, Actual: 1,
				})
			}
		}
		// Erasure-coded object, post-repair: every fragment index must
		// be back on some live node (placement spread across distinct
		// nodes is a preference, not an invariant).
		if fs, data, total, isEC := ecShape(s, f); isEC {
			byIdx := fs.FragmentHolders(f)
			if len(byIdx) < data {
				out = ck.emit(out, Violation{
					Epoch: epoch, Kind: ViolationFragmentsLost, File: f,
					Expected: data, Actual: len(byIdx),
				})
				continue
			}
			for idx := 0; idx < total; idx++ {
				if len(byIdx[idx]) == 0 {
					out = ck.emit(out, Violation{
						Epoch: epoch, Kind: ViolationFragmentMissing, File: f,
						Expected: total, Actual: len(byIdx),
					})
					break
				}
			}
		}
	}
	return out
}
