package chaos

import (
	"context"
	"errors"
	"strings"
	"testing"

	"past/internal/id"
	"past/internal/netsim"
	"past/internal/topology"
)

type echo struct{ delivered int }

func (e *echo) Deliver(from id.Node, msg any) (any, error) {
	e.delivered++
	return msg, nil
}

// rig is a tiny emulated network of n nodes bound to one chaos core.
type rig struct {
	net   *netsim.Network
	core  *Core
	nodes []id.Node
	views []*Net
	eps   []*echo
}

func newRig(t *testing.T, n int, sched Schedule) *rig {
	t.Helper()
	r := &rig{net: netsim.New(), core: NewCore(sched)}
	for i := 0; i < n; i++ {
		nid := id.NodeFromUint64(uint64(i + 1))
		ep := &echo{}
		r.net.Register(nid, topology.Point{X: float64(i)}, ep)
		r.nodes = append(r.nodes, nid)
		r.views = append(r.views, r.core.Bind(nid, r.net))
		r.eps = append(r.eps, ep)
	}
	r.core.SetActive(true)
	return r
}

func TestInactivePassThrough(t *testing.T) {
	r := newRig(t, 2, Schedule{Links: []LinkRule{{Drop: 1}}})
	r.core.SetActive(false)
	if _, err := r.views[0].Invoke(context.Background(), r.nodes[0], r.nodes[1], "x"); err != nil {
		t.Fatalf("inactive core must pass through: %v", err)
	}
	if r.core.EventCount() != 0 {
		t.Fatal("inactive core injected faults")
	}
}

func TestDropLooksLikeTimeout(t *testing.T) {
	r := newRig(t, 2, Schedule{Links: []LinkRule{{Drop: 1}}})
	_, err := r.views[0].Invoke(context.Background(), r.nodes[0], r.nodes[1], "x")
	if !errors.Is(err, netsim.ErrTimeout) {
		t.Fatalf("dropped message must map to ErrTimeout, got %v", err)
	}
	if !netsim.Retryable(err) {
		t.Fatalf("a dropped message must classify as retryable, got %v", err)
	}
	c := r.core.Counters()
	if c[FaultDropRequest]+c[FaultDropReply] != 1 {
		t.Fatalf("counters = %v", c)
	}
}

func TestDropSplitsRequestAndReply(t *testing.T) {
	r := newRig(t, 2, Schedule{Seed: 7, Links: []LinkRule{{Drop: 1}}})
	for i := 0; i < 200; i++ {
		if _, err := r.views[0].Invoke(context.Background(), r.nodes[0], r.nodes[1], "x"); err == nil {
			t.Fatal("drop=1 must fail every invoke")
		}
	}
	c := r.core.Counters()
	if c[FaultDropRequest] == 0 || c[FaultDropReply] == 0 {
		t.Fatalf("want both request and reply drops, got %v", c)
	}
	// Reply drops delivered the message; request drops did not.
	if int64(r.eps[1].delivered) != c[FaultDropReply] {
		t.Fatalf("delivered %d, reply drops %d", r.eps[1].delivered, c[FaultDropReply])
	}
}

func TestDuplicationDeliversTwice(t *testing.T) {
	r := newRig(t, 2, Schedule{Links: []LinkRule{{Dup: 1}}})
	reply, err := r.views[0].Invoke(context.Background(), r.nodes[0], r.nodes[1], "x")
	if err != nil || reply != "x" {
		t.Fatalf("dup must still return the first reply: %v %v", reply, err)
	}
	if r.eps[1].delivered != 2 {
		t.Fatalf("delivered %d times; want 2", r.eps[1].delivered)
	}
}

func TestAsymmetricPartition(t *testing.T) {
	sched := Schedule{Partitions: []PartitionRule{{
		Window: Window{From: 0, Until: 10}, A: []int{0}, B: []int{1},
	}}}
	r := newRig(t, 3, sched)
	// A -> B blocked.
	if _, err := r.views[0].Invoke(context.Background(), r.nodes[0], r.nodes[1], "x"); !errors.Is(err, netsim.ErrNodeDown) {
		t.Fatalf("A->B must be partitioned, got %v", err)
	}
	// B -> A open (asymmetric).
	if _, err := r.views[1].Invoke(context.Background(), r.nodes[1], r.nodes[0], "x"); err != nil {
		t.Fatalf("B->A must pass: %v", err)
	}
	// Third parties unaffected.
	if _, err := r.views[2].Invoke(context.Background(), r.nodes[2], r.nodes[0], "x"); err != nil {
		t.Fatalf("C->A must pass: %v", err)
	}
	// Alive answers from the caller's side.
	if r.views[0].Alive(r.nodes[1]) {
		t.Fatal("A must see B as down")
	}
	if !r.views[1].Alive(r.nodes[0]) {
		t.Fatal("B must see A as up")
	}
	// The partition expires with its window.
	r.core.SetTick(10)
	if _, err := r.views[0].Invoke(context.Background(), r.nodes[0], r.nodes[1], "x"); err != nil {
		t.Fatalf("partition must lift at tick 10: %v", err)
	}
}

func TestSymmetricPartition(t *testing.T) {
	sched := Schedule{Partitions: []PartitionRule{{
		A: []int{0}, B: []int{1}, Symmetric: true,
	}}}
	r := newRig(t, 2, sched)
	if _, err := r.views[0].Invoke(context.Background(), r.nodes[0], r.nodes[1], "x"); err == nil {
		t.Fatal("A->B must be blocked")
	}
	if _, err := r.views[1].Invoke(context.Background(), r.nodes[1], r.nodes[0], "x"); err == nil {
		t.Fatal("B->A must be blocked (symmetric)")
	}
}

func TestDelayAndSlowNodesAccumulateVirtualTime(t *testing.T) {
	sched := Schedule{
		Links: []LinkRule{{From: []int{0}, To: []int{1}, DelayMS: 10}},
		Slow:  []SlowRule{{Nodes: []int{2}, DelayMS: 50}},
	}
	r := newRig(t, 3, sched)
	if _, err := r.views[0].Invoke(context.Background(), r.nodes[0], r.nodes[1], "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.views[0].Invoke(context.Background(), r.nodes[0], r.nodes[2], "x"); err != nil { // to a slow node
		t.Fatal(err)
	}
	if _, err := r.views[2].Invoke(context.Background(), r.nodes[2], r.nodes[0], "x"); err != nil { // from a slow node
		t.Fatal(err)
	}
	if got := r.core.VirtualDelayMS(); got != 10+50+50 {
		t.Fatalf("virtual delay = %d ms; want 110", got)
	}
	if r.core.Counters()[FaultDelay] != 3 {
		t.Fatalf("delay count = %v", r.core.Counters())
	}
}

func TestWindowGatesRules(t *testing.T) {
	sched := Schedule{Links: []LinkRule{{Window: Window{From: 5, Until: 6}, Drop: 1}}}
	r := newRig(t, 2, sched)
	if _, err := r.views[0].Invoke(context.Background(), r.nodes[0], r.nodes[1], "x"); err != nil {
		t.Fatalf("tick 0 is outside the window: %v", err)
	}
	r.core.SetTick(5)
	if _, err := r.views[0].Invoke(context.Background(), r.nodes[0], r.nodes[1], "x"); err == nil {
		t.Fatal("tick 5 is inside the window")
	}
	r.core.SetTick(6)
	if _, err := r.views[0].Invoke(context.Background(), r.nodes[0], r.nodes[1], "x"); err != nil {
		t.Fatalf("tick 6 is past the window: %v", err)
	}
}

func TestFaultsCompose(t *testing.T) {
	// One schedule expressing a partition, a lossy link, and a churn
	// script simultaneously — the composability requirement.
	sched := Schedule{
		Seed:       3,
		Links:      []LinkRule{{Drop: 0.5}},
		Partitions: []PartitionRule{{A: []int{0}, B: []int{2}, Symmetric: true}},
		Churn: []ChurnEvent{
			{At: 1, Fail: []int{3}},
			{At: 2, Recover: []int{3}},
		},
	}
	r := newRig(t, 4, sched)
	fail, rec := sched.ChurnAt(1)
	if len(fail) != 1 || fail[0] != 3 || len(rec) != 0 {
		t.Fatalf("ChurnAt(1) = %v %v", fail, rec)
	}
	if _, err := r.views[0].Invoke(context.Background(), r.nodes[0], r.nodes[2], "x"); err == nil {
		t.Fatal("partition must block despite other rules")
	}
	drops := 0
	for i := 0; i < 100; i++ {
		if _, err := r.views[0].Invoke(context.Background(), r.nodes[0], r.nodes[1], "x"); err != nil {
			drops++
		}
	}
	if drops == 0 || drops == 100 {
		t.Fatalf("drop=0.5 gave %d/100 drops", drops)
	}
	if sched.End() != 3 {
		t.Fatalf("End() = %d; want 3", sched.End())
	}
}

func TestDeterministicFingerprint(t *testing.T) {
	sched := Schedule{Seed: 42, Links: []LinkRule{{Drop: 0.3, Dup: 0.2, DelayMS: 5}}}
	run := func() (string, []Event) {
		r := newRig(t, 3, sched)
		for i := 0; i < 300; i++ {
			src, dst := i%3, (i+1)%3
			r.core.SetTick(i / 50)
			_, _ = r.views[src].Invoke(context.Background(), r.nodes[src], r.nodes[dst], "probe")
		}
		r.core.RecordChurn(FaultFail, r.nodes[1])
		r.core.RecordChurn(FaultRecover, r.nodes[1])
		return r.core.Fingerprint(), r.core.Events()
	}
	fp1, ev1 := run()
	fp2, ev2 := run()
	if fp1 != fp2 {
		t.Fatalf("same schedule+seed produced different fingerprints:\n%s\n%s", fp1, fp2)
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("event logs differ in length: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("event %d differs: %v vs %v", i, ev1[i], ev2[i])
		}
	}
	// A different seed must change the timeline.
	sched2 := sched
	sched2.Seed = 43
	r := newRig(t, 3, sched2)
	for i := 0; i < 300; i++ {
		src, dst := i%3, (i+1)%3
		r.core.SetTick(i / 50)
		_, _ = r.views[src].Invoke(context.Background(), r.nodes[src], r.nodes[dst], "probe")
	}
	r.core.RecordChurn(FaultFail, r.nodes[1])
	r.core.RecordChurn(FaultRecover, r.nodes[1])
	if r.core.Fingerprint() == fp1 {
		t.Fatal("different seed produced an identical fingerprint")
	}
}

func TestOnFaultHookFires(t *testing.T) {
	r := newRig(t, 2, Schedule{Links: []LinkRule{{Drop: 1}}})
	var kinds []string
	r.core.OnFault = func(kind string) { kinds = append(kinds, kind) }
	_, _ = r.views[0].Invoke(context.Background(), r.nodes[0], r.nodes[1], "x")
	if len(kinds) != 1 || !strings.HasPrefix(kinds[0], "drop-") {
		t.Fatalf("hook saw %v", kinds)
	}
}

func TestRosterAndUnboundNodes(t *testing.T) {
	// Explicit-index rules must not match nodes that were never bound
	// (e.g. external clients); nil selectors match everyone.
	sched := Schedule{Links: []LinkRule{{From: []int{0}, To: []int{1}, Drop: 1}}}
	r := newRig(t, 2, sched)
	if got := r.core.Len(); got != 2 {
		t.Fatalf("roster length %d", got)
	}
	if nid, ok := r.core.NodeAt(1); !ok || nid != r.nodes[1] {
		t.Fatalf("NodeAt(1) = %v %v", nid, ok)
	}
	if _, ok := r.core.NodeAt(9); ok {
		t.Fatal("NodeAt out of range must report false")
	}
	stranger := id.NodeFromUint64(99)
	r.net.Register(stranger, topology.Point{}, &echo{})
	view := r.core.Bind(stranger, r.net) // binding appends to the roster
	if got := r.core.Len(); got != 3 {
		t.Fatalf("roster length after bind %d", got)
	}
	// stranger (index 2) is not matched by the {0}->{1} rule.
	if _, err := view.Invoke(context.Background(), stranger, r.nodes[1], "x"); err != nil {
		t.Fatalf("rule must not match unrelated nodes: %v", err)
	}
}
