package chaos

// This file adds crash-fault injection for the durable storage engine:
// a multi-life harness that drives a seeded op sequence against a
// logstore, kills it without a clean shutdown, mutilates the log tail
// the way a power cut would, reopens, and checks the recovered state
// against an oracle of what was durable. Complements the network chaos
// in this package: that one shakes the overlay, this one shakes the
// disk.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"past/internal/id"
	"past/internal/logstore"
	"past/internal/store"
)

// CrashConfig parameterizes a crash soak.
type CrashConfig struct {
	Dir      string // logstore directory (created if missing)
	Seed     int64
	Lives    int // kill/recover cycles
	OpsPer   int // mutations per life
	Capacity int64
	// MaxTruncate bounds how many bytes a simulated power cut may shave
	// off the WAL tail (default 256).
	MaxTruncate int
}

func (c CrashConfig) withDefaults() CrashConfig {
	if c.Lives == 0 {
		c.Lives = 5
	}
	if c.OpsPer == 0 {
		c.OpsPer = 200
	}
	if c.Capacity == 0 {
		c.Capacity = 1 << 30
	}
	if c.MaxTruncate == 0 {
		c.MaxTruncate = 256
	}
	return c
}

// CrashReport summarizes a crash soak.
type CrashReport struct {
	Lives        int
	Ops          int
	Truncated    int64 // total bytes shaved off WAL tails
	LostOps      int   // ops rolled back by tail loss (expected, counted)
	RecoveredOK  int   // lives whose recovery matched the oracle
	FsckOK       bool  // final fsck verdict
	Fingerprint  string
	FinalEntries int
}

// RunCrash executes a deterministic crash soak: every life applies
// OpsPer random mutations, records the WAL offset after each, kills the
// store mid-flight, truncates a random number of tail bytes, reopens,
// and asserts the recovered metadata equals the oracle prefix that
// survived the cut. Returns an error on any invariant violation; the
// fingerprint is a stable hash of the full op/crash/recovery history.
func RunCrash(cfg CrashConfig) (*CrashReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("chaos: crash soak needs a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	rep := &CrashReport{Lives: cfg.Lives}
	h := sha256.New()
	note := func(format string, args ...any) {
		fmt.Fprintf(h, format+"\n", args...)
	}

	// The oracle tracks durable metadata across lives. Within a life,
	// snapshots[i] is the oracle after the i-th successful op.
	type snap struct {
		walOff   int64
		entries  map[id.File]store.Entry
		pointers map[id.File]store.Pointer
	}
	durable := snap{entries: map[id.File]store.Entry{}, pointers: map[id.File]store.Pointer{}}
	cloneSnap := func(s snap) snap {
		c := snap{walOff: s.walOff, entries: make(map[id.File]store.Entry, len(s.entries)), pointers: make(map[id.File]store.Pointer, len(s.pointers))}
		for k, v := range s.entries {
			c.entries[k] = v
		}
		for k, v := range s.pointers {
			c.pointers[k] = v
		}
		return c
	}

	opts := logstore.Options{Capacity: cfg.Capacity, Sync: logstore.SyncNever, CheckpointBytes: -1, CompactRatio: -1}
	for life := 0; life < cfg.Lives; life++ {
		s, err := logstore.Open(cfg.Dir, opts)
		if err != nil {
			return rep, fmt.Errorf("chaos: life %d open: %w", life, err)
		}
		// Recovery check: the reopened store must equal the durable oracle.
		if err := crashCompare(s, durable.entries, durable.pointers); err != nil {
			s.Kill()
			return rep, fmt.Errorf("chaos: life %d recovery mismatch: %w", life, err)
		}
		rep.RecoveredOK++
		note("life %d recovered entries=%d pointers=%d", life, len(durable.entries), len(durable.pointers))

		cur := cloneSnap(durable)
		cur.walOff = s.WALOffset()
		snaps := []snap{cloneSnap(cur)}
		var live []id.File
		for f := range cur.entries {
			live = append(live, f)
		}
		sort.Slice(live, func(i, j int) bool { return bytes.Compare(live[i][:], live[j][:]) < 0 })
		var livePtr []id.File
		for f := range cur.pointers {
			livePtr = append(livePtr, f)
		}
		sort.Slice(livePtr, func(i, j int) bool { return bytes.Compare(livePtr[i][:], livePtr[j][:]) < 0 })

		for i := 0; i < cfg.OpsPer; i++ {
			mutated := false
			switch op := r.Intn(10); {
			case op < 5:
				f := crashFid(r.Uint64() % (1 << 24))
				if _, dup := cur.entries[f]; dup {
					continue
				}
				size := int64(r.Intn(200) + 1)
				e := store.Entry{File: f, Size: size, Kind: store.Kind(r.Intn(2))}
				if r.Intn(3) != 0 {
					e.Content = crashContent(f, int(size))
				}
				if err := s.Add(e); err != nil {
					s.Kill()
					return rep, fmt.Errorf("chaos: life %d add: %w", life, err)
				}
				e.Content = nil
				cur.entries[f] = e
				live = append(live, f)
				mutated = true
			case op < 7:
				if len(live) == 0 {
					continue
				}
				j := r.Intn(len(live))
				f := live[j]
				live = append(live[:j], live[j+1:]...)
				if _, ok := s.Remove(f); !ok {
					s.Kill()
					return rep, fmt.Errorf("chaos: life %d remove %s failed", life, f.Short())
				}
				delete(cur.entries, f)
				mutated = true
			case op < 9:
				f := crashFid(1<<32 + r.Uint64()%(1<<16))
				p := store.Pointer{File: f, Target: id.NodeFromUint64(r.Uint64() % (1 << 16)), Size: int64(r.Intn(50)), Role: store.PtrRole(r.Intn(2))}
				s.SetPointer(p)
				if _, had := cur.pointers[f]; !had {
					livePtr = append(livePtr, f)
				}
				cur.pointers[f] = p
				mutated = true
			default:
				if len(livePtr) == 0 {
					continue
				}
				j := r.Intn(len(livePtr))
				f := livePtr[j]
				livePtr = append(livePtr[:j], livePtr[j+1:]...)
				if _, ok := s.RemovePointer(f); !ok {
					s.Kill()
					return rep, fmt.Errorf("chaos: life %d remove pointer failed", life)
				}
				delete(cur.pointers, f)
				mutated = true
			}
			if mutated {
				rep.Ops++
				cur.walOff = s.WALOffset()
				snaps = append(snaps, cloneSnap(cur))
			}
		}

		// Power cut: kill without sync, then shave a random tail.
		walPath, walLen := s.WALFile()
		s.Kill()
		cut := int64(r.Intn(cfg.MaxTruncate + 1))
		newLen := walLen - cut
		if min := snaps[0].walOff; newLen < min {
			newLen = min // never cut into a previous life's durable state
		}
		if err := os.Truncate(walPath, newLen); err != nil {
			return rep, fmt.Errorf("chaos: life %d truncate: %w", life, err)
		}
		rep.Truncated += walLen - newLen
		note("life %d cut %d bytes (wal %d -> %d)", life, walLen-newLen, walLen, newLen)

		// The new durable state is the longest snapshot that fits.
		best := snaps[0]
		for _, sn := range snaps {
			if sn.walOff <= newLen {
				best = sn
			}
		}
		for _, sn := range snaps[1:] {
			if sn.walOff > newLen {
				rep.LostOps++
			}
		}
		durable = cloneSnap(best)
	}

	// Final life: reopen, verify, fsck, close cleanly.
	s, err := logstore.Open(cfg.Dir, opts)
	if err != nil {
		return rep, fmt.Errorf("chaos: final open: %w", err)
	}
	if err := crashCompare(s, durable.entries, durable.pointers); err != nil {
		s.Kill()
		return rep, fmt.Errorf("chaos: final recovery mismatch: %w", err)
	}
	rep.FinalEntries = s.Len()
	if err := s.Close(); err != nil {
		return rep, fmt.Errorf("chaos: final close: %w", err)
	}
	fr, err := logstore.Fsck(cfg.Dir)
	if err != nil {
		return rep, err
	}
	rep.FsckOK = fr.OK()
	if !rep.FsckOK {
		return rep, fmt.Errorf("chaos: final fsck found corruption:\n%s", fr)
	}
	note("final entries=%d fsck=ok", rep.FinalEntries)
	rep.Fingerprint = fmt.Sprintf("%x", h.Sum(nil))[:16]
	return rep, nil
}

// crashCompare asserts a recovered store's metadata equals the oracle,
// and that any surfaced content matches its deterministic expectation.
func crashCompare(s *logstore.Store, entries map[id.File]store.Entry, pointers map[id.File]store.Pointer) error {
	if s.Len() != len(entries) {
		return fmt.Errorf("len=%d want %d", s.Len(), len(entries))
	}
	for f, we := range entries {
		e, ok := s.Get(f)
		if !ok {
			return fmt.Errorf("entry %s missing", f.Short())
		}
		if e.Size != we.Size || e.Kind != we.Kind {
			return fmt.Errorf("entry %s metadata mismatch", f.Short())
		}
		if e.Content != nil && !bytes.Equal(e.Content, crashContent(f, int(we.Size))) {
			return fmt.Errorf("entry %s surfaced wrong content", f.Short())
		}
	}
	got := s.Pointers()
	if len(got) != len(pointers) {
		return fmt.Errorf("pointers=%d want %d", len(got), len(pointers))
	}
	for _, p := range got {
		if pointers[p.File] != p {
			return fmt.Errorf("pointer %s mismatch", p.File.Short())
		}
	}
	return nil
}

// crashFid derives a file id from a counter, and crashContent derives
// that file's content deterministically, so the oracle never has to
// store payloads.
func crashFid(n uint64) id.File { return id.NewFile("crash", nil, n) }

func crashContent(f id.File, size int) []byte {
	seed := int64(binary.BigEndian.Uint64(f[:8]))
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, size)
	r.Read(b)
	return b
}

// CrashDirIsTemp reports whether dir is safe to delete after a soak
// (it only contains logstore files). Used by the CLI's cleanup path.
func CrashDirIsTemp(dir string) bool {
	des, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, de := range des {
		name := de.Name()
		if name == "checkpoint.gob" {
			continue
		}
		if filepath.Ext(name) == ".log" || filepath.Ext(name) == ".seg" {
			continue
		}
		return false
	}
	return true
}
