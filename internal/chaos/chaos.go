package chaos

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"math/rand"
	"sync"

	"past/internal/id"
	"past/internal/netsim"
	"past/internal/stats"
)

// maxEventLog bounds the retained event list; the running fingerprint
// hash still covers every event, so determinism checks stay exact even
// when the list truncates.
const maxEventLog = 4096

// Fault kinds, as they appear in counters, events, and metrics.
const (
	FaultDropRequest = "drop-request"
	FaultDropReply   = "drop-reply"
	FaultDup         = "duplicate"
	FaultDelay       = "delay"
	FaultPartition   = "partition"
	FaultFail        = "fail"
	FaultRecover     = "recover"
)

// Event is one injected fault, recorded for the event log and folded
// into the run fingerprint.
type Event struct {
	Tick     int
	Kind     string
	Src, Dst id.Node
	Msg      string // concrete message type, empty for churn events
}

// String renders the event in the canonical (fingerprinted) form.
func (e Event) String() string {
	return fmt.Sprintf("t=%d %s %s->%s %s", e.Tick, e.Kind, e.Src.Short(), e.Dst.Short(), e.Msg)
}

// Core holds the shared state of one fault-injection run: the schedule,
// the seeded RNG every probabilistic decision draws from, the virtual
// clock, the roster mapping schedule indices to nodeIds, and the fault
// log. Nodes talk through per-node views created with Bind, so the
// partition rules can be asymmetric and Alive can answer from the
// caller's side of a partition.
//
// Probabilistic decisions are serialized under one mutex; runs driven by
// a single goroutine (like every experiment in this repository) are
// therefore bit-reproducible for a given schedule.
type Core struct {
	sched Schedule

	// OnFault, if set, observes every injected fault by kind — the hook
	// the metrics.Collector counters attach to. Called without locks.
	OnFault func(kind string)

	mu       sync.Mutex
	rng      *rand.Rand
	roster   []id.Node
	idx      map[id.Node]int
	tick     int
	active   bool
	counters map[string]int64
	delayMS  int64
	events   []Event
	nevents  int64
	digest   hash.Hash
}

// NewCore creates the shared state for one run of the given schedule.
// Fault injection starts disabled so the cluster can be built and
// seeded cleanly; call SetActive(true) when the soak begins.
func NewCore(sched Schedule) *Core {
	return &Core{
		sched:    sched,
		rng:      stats.NewRand(sched.Seed),
		idx:      make(map[id.Node]int),
		counters: make(map[string]int64),
		digest:   sha256.New(),
	}
}

// Bind registers self into the roster (in call order, which is how
// schedule rules address nodes) and returns the node's view of the
// network: a netsim.Net that routes every message through the fault
// injector before handing it to inner.
func (c *Core) Bind(self id.Node, inner netsim.Net) *Net {
	c.mu.Lock()
	if _, ok := c.idx[self]; !ok {
		c.idx[self] = len(c.roster)
		c.roster = append(c.roster, self)
	}
	c.mu.Unlock()
	return &Net{core: c, self: self, inner: inner}
}

// NodeAt resolves a roster index to its nodeId.
func (c *Core) NodeAt(i int) (id.Node, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.roster) {
		return id.Node{}, false
	}
	return c.roster[i], true
}

// Len returns the roster size.
func (c *Core) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.roster)
}

// Schedule returns the schedule this core executes.
func (c *Core) Schedule() Schedule { return c.sched }

// SetActive enables or disables fault injection. Disabled, every view
// is a transparent pass-through.
func (c *Core) SetActive(v bool) {
	c.mu.Lock()
	c.active = v
	c.mu.Unlock()
}

// SetTick advances (or rewinds) the virtual clock the schedule windows
// are evaluated against.
func (c *Core) SetTick(t int) {
	c.mu.Lock()
	c.tick = t
	c.mu.Unlock()
}

// Tick returns the current virtual time.
func (c *Core) Tick() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tick
}

// RecordChurn folds a driver-executed churn action (kind FaultFail or
// FaultRecover) into the event log and fingerprint.
func (c *Core) RecordChurn(kind string, node id.Node) {
	c.mu.Lock()
	c.recordLocked(Event{Tick: c.tick, Kind: kind, Src: node, Dst: node})
	c.mu.Unlock()
	c.notify(kind)
}

// Counters returns a snapshot of per-kind fault counts.
func (c *Core) Counters() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counters))
	for k, v := range c.counters {
		out[k] = v
	}
	return out
}

// VirtualDelayMS returns the total virtual latency injected so far.
func (c *Core) VirtualDelayMS() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.delayMS
}

// Events returns the retained fault log (the first maxEventLog events;
// EventCount reports how many occurred in total).
func (c *Core) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// EventCount returns the total number of faults injected.
func (c *Core) EventCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nevents
}

// Fingerprint returns a hex digest covering every fault event (in
// order) plus the final counters — identical schedules and seeds must
// produce identical fingerprints, which is the reproducibility contract
// the tests assert.
func (c *Core) Fingerprint() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	sum := sha256.New()
	sum.Write(c.digest.Sum(nil))
	for _, kv := range SortedCounters(c.counters) {
		sum.Write([]byte(kv))
	}
	return hex.EncodeToString(sum.Sum(nil))
}

// recordLocked appends an event to the log and the running digest.
// Caller holds c.mu.
func (c *Core) recordLocked(e Event) {
	c.counters[e.Kind]++
	c.nevents++
	c.digest.Write([]byte(e.String()))
	c.digest.Write([]byte{'\n'})
	if len(c.events) < maxEventLog {
		c.events = append(c.events, e)
	}
}

func (c *Core) notify(kind string) {
	if c.OnFault != nil {
		c.OnFault(kind)
	}
}

// indexLocked resolves a nodeId to its roster index, -1 if unbound.
func (c *Core) indexLocked(n id.Node) int {
	if i, ok := c.idx[n]; ok {
		return i
	}
	return -1
}

// partitionedLocked reports whether an active partition blocks src->dst.
func (c *Core) partitionedLocked(si, di int) bool {
	for _, p := range c.sched.Partitions {
		if !p.Contains(c.tick) {
			continue
		}
		if matches(p.A, si) && matches(p.B, di) {
			return true
		}
		if p.Symmetric && matches(p.B, si) && matches(p.A, di) {
			return true
		}
	}
	return false
}

// linkFaultsLocked accumulates the active drop/dup probabilities and
// delay for a src->dst message. Probabilities from overlapping rules
// combine as independent events; delays add.
func (c *Core) linkFaultsLocked(si, di int) (drop, dup float64, delayMS int) {
	keep, keepDup := 1.0, 1.0
	for _, r := range c.sched.Links {
		if !r.Contains(c.tick) || !matches(r.From, si) || !matches(r.To, di) {
			continue
		}
		keep *= 1 - r.Drop
		keepDup *= 1 - r.Dup
		delayMS += r.DelayMS
	}
	for _, r := range c.sched.Slow {
		if !r.Contains(c.tick) {
			continue
		}
		if matches(r.Nodes, si) || matches(r.Nodes, di) {
			delayMS += r.DelayMS
		}
	}
	return 1 - keep, 1 - keepDup, delayMS
}

// decision is the precomputed fate of one message.
type decision struct {
	partitioned bool
	dropReq     bool
	dropReply   bool
	duplicate   bool
	delayMS     int
}

// decide draws the message's fate from the seeded RNG.
func (c *Core) decide(src, dst id.Node) (d decision, active bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.active {
		return decision{}, false
	}
	si, di := c.indexLocked(src), c.indexLocked(dst)
	if c.partitionedLocked(si, di) {
		return decision{partitioned: true}, true
	}
	drop, dup, delayMS := c.linkFaultsLocked(si, di)
	d.delayMS = delayMS
	if drop > 0 && c.rng.Float64() < drop {
		if c.rng.Float64() < 0.5 {
			d.dropReq = true
		} else {
			d.dropReply = true
		}
	}
	if dup > 0 && c.rng.Float64() < dup {
		d.duplicate = true
	}
	return d, true
}

// record logs one fault (with the current tick) and fires the hook.
func (c *Core) record(kind string, src, dst id.Node, msg any) {
	c.mu.Lock()
	c.recordLocked(Event{Tick: c.tick, Kind: kind, Src: src, Dst: dst, Msg: fmt.Sprintf("%T", msg)})
	c.mu.Unlock()
	c.notify(kind)
}

// addDelay accounts virtual latency without logging per-message events
// (delays are too frequent to log individually).
func (c *Core) addDelay(ms int) {
	c.mu.Lock()
	c.counters[FaultDelay]++
	c.delayMS += int64(ms)
	c.mu.Unlock()
	c.notify(FaultDelay)
}

// Net is one node's view of the faulty network. It implements
// netsim.Net, so pastry and past node code runs over it unchanged.
type Net struct {
	core  *Core
	self  id.Node
	inner netsim.Net
}

var _ netsim.Net = (*Net)(nil)

// Inner returns the wrapped network.
func (n *Net) Inner() netsim.Net { return n.inner }

// Invoke applies the schedule to one message, then delivers it through
// the wrapped network. A dropped request or reply surfaces as
// netsim.ErrTimeout (wrapped) — at the sender a lost message IS a
// timeout, and the retry layers must classify it as transient, not as
// proof the peer died. A partitioned link surfaces as netsim.ErrNodeDown:
// from the sender's side of the cut the peer is indistinguishable from a
// dead one. Dropped replies deliver the message and then report the
// failure to the sender.
func (n *Net) Invoke(ctx context.Context, src, dst id.Node, msg any) (any, error) {
	d, active := n.core.decide(src, dst)
	if !active {
		return n.inner.Invoke(ctx, src, dst, msg)
	}
	if d.partitioned {
		n.core.record(FaultPartition, src, dst, msg)
		return nil, fmt.Errorf("chaos: %s -> %s partitioned: %w", src.Short(), dst.Short(), netsim.ErrNodeDown)
	}
	if d.delayMS > 0 {
		n.core.addDelay(d.delayMS)
	}
	if d.dropReq {
		n.core.record(FaultDropRequest, src, dst, msg)
		return nil, fmt.Errorf("chaos: %s -> %s request dropped: %w", src.Short(), dst.Short(), netsim.ErrTimeout)
	}
	reply, err := n.inner.Invoke(ctx, src, dst, msg)
	if d.duplicate {
		n.core.record(FaultDup, src, dst, msg)
		// Second delivery; the duplicate's reply (and failure) is
		// discarded, as a retransmission's would be.
		_, _ = n.inner.Invoke(ctx, src, dst, msg)
	}
	if d.dropReply && err == nil {
		n.core.record(FaultDropReply, src, dst, msg)
		return nil, fmt.Errorf("chaos: %s -> %s reply dropped: %w", src.Short(), dst.Short(), netsim.ErrTimeout)
	}
	return reply, err
}

// Alive reports reachability from this node's side of the network: a
// node behind an active partition is indistinguishable from a dead one.
func (n *Net) Alive(dst id.Node) bool {
	c := n.core
	c.mu.Lock()
	blocked := c.active && c.partitionedLocked(c.indexLocked(n.self), c.indexLocked(dst))
	c.mu.Unlock()
	if blocked {
		return false
	}
	return n.inner.Alive(dst)
}

// Proximity passes through; fault injection does not move nodes.
func (n *Net) Proximity(a, b id.Node) (float64, bool) {
	return n.inner.Proximity(a, b)
}
