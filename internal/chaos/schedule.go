// Package chaos is a deterministic fault-injection layer for the PAST
// network. It wraps any netsim.Net — the in-process emulation or the TCP
// transport — and applies a seeded fault schedule: message drops (of the
// request or of the reply), virtual message delay, message duplication,
// asymmetric network partitions, slow nodes, and scripted crash/recovery
// timelines. All randomness flows from the schedule's single seed, so a
// given schedule reproduces byte-identical fault timelines run after run
// (the Core keeps a running fingerprint to prove it).
//
// Time is virtual: the driver advances a tick counter and the schedule's
// windows are expressed in ticks, exactly like the maintenance "rounds"
// the rest of the emulation uses. The package also provides the
// invariant checker the paper's durability claims are tested against:
// every confirmed insert keeps at least one reachable replica, replica
// counts converge back to k after repair, and no node retains primary
// replicas it no longer owns once the leaf sets heal.
package chaos

import (
	"sort"
	"strconv"
)

// Window is a half-open tick interval [From, Until) during which a rule
// is active. Until <= 0 means the rule never expires.
type Window struct {
	From, Until int
}

// Contains reports whether tick t falls inside the window.
func (w Window) Contains(t int) bool {
	if t < w.From {
		return false
	}
	return w.Until <= 0 || t < w.Until
}

// Rules identify nodes by roster index — the order in which nodes were
// bound to the Core, which for a past.Cluster is the build order. A nil
// index slice matches every node (including nodes never bound, such as
// pure clients).

// LinkRule applies stochastic faults to messages from a From node to a
// To node while its window is active.
type LinkRule struct {
	Window
	From, To []int
	// Drop is the probability a message is lost. Half of the losses
	// remove the request (the destination never sees it), half remove
	// the reply (the destination acted, the sender sees a failure) —
	// the distinction that flushes out non-idempotent handlers.
	Drop float64
	// Dup is the probability a message is delivered twice.
	Dup float64
	// DelayMS is virtual latency charged to every matching message.
	DelayMS int
}

// SlowRule charges extra virtual latency on every message to or from
// the listed nodes — the emulated "slow node".
type SlowRule struct {
	Window
	Nodes   []int
	DelayMS int
}

// PartitionRule blocks all messages from group A to group B while
// active. The block is asymmetric unless Symmetric is set, which also
// blocks B to A.
type PartitionRule struct {
	Window
	A, B      []int
	Symmetric bool
}

// ChurnEvent is one scripted step of a crash/recovery timeline. The
// driver executes it when its tick is reached: Fail nodes are marked
// down (keeping their disks), Recover nodes come back and rejoin.
type ChurnEvent struct {
	At            int
	Fail, Recover []int
}

// Schedule is a complete composed fault scenario: any number of link
// rules, slow nodes, partitions, and churn steps, all driven by one
// seed.
type Schedule struct {
	Seed       int64
	Links      []LinkRule
	Slow       []SlowRule
	Partitions []PartitionRule
	Churn      []ChurnEvent
}

// ChurnAt collects the fail and recover lists of every churn event
// scheduled at tick t.
func (s Schedule) ChurnAt(t int) (fail, recover []int) {
	for _, e := range s.Churn {
		if e.At == t {
			fail = append(fail, e.Fail...)
			recover = append(recover, e.Recover...)
		}
	}
	return fail, recover
}

// End returns the first tick at which no rule is active and no churn
// event remains — the natural length of the schedule. Rules with no
// expiry are ignored.
func (s Schedule) End() int {
	end := 0
	up := func(t int) {
		if t > end {
			end = t
		}
	}
	for _, r := range s.Links {
		up(r.Until)
	}
	for _, r := range s.Slow {
		up(r.Until)
	}
	for _, r := range s.Partitions {
		up(r.Until)
	}
	for _, e := range s.Churn {
		up(e.At + 1)
	}
	return end
}

// matches reports whether roster index i is selected by set (nil
// selects everything; an unbound node, index -1, only matches nil).
func matches(set []int, i int) bool {
	if set == nil {
		return true
	}
	if i < 0 {
		return false
	}
	for _, v := range set {
		if v == i {
			return true
		}
	}
	return false
}

// SortedCounters flattens a counter map into a deterministic "k=v"
// list, for rendering and fingerprinting.
func SortedCounters(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k+"="+strconv.FormatInt(m[k], 10))
	}
	return out
}
