// Package admit is per-node admission control: a token bucket bounding
// the sustained request rate, a bounded queue absorbing bursts, and a
// shedding policy deciding who loses when the queue is full. Requests
// the node cannot take are rejected with netsim.ErrOverloaded — a
// retryable, reroutable signal — instead of being accepted into an
// unbounded backlog where every request's latency grows without limit.
//
// The controller runs in three modes, sharing one token-bucket state:
//
//   - TryAdmit: non-blocking, for the routed overlay path. The emulated
//     network delivers messages by direct call, so there is nothing to
//     make a request wait on; the queue is modeled as token debt (the
//     bucket may go negative down to -Depth).
//   - Admit: blocking, for real TCP servers. Callers park in an explicit
//     waiter queue; a dispatcher goroutine grants them as tokens refill.
//   - Offer/Drain: virtual time, for the deterministic load generator.
//     The driver owns the clock; arrivals are submitted in time order
//     and grants/sheds resolve synchronously at exact token times, so a
//     fixed seed gives a bit-identical schedule.
package admit

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"past/internal/netsim"
)

// Policy selects which request is shed when the queue is full, and in
// what order waiting requests are served.
type Policy int

const (
	// DropTail rejects the arriving request; queued requests keep their
	// FIFO order. Simple, but under sustained overload every queued
	// request is old by the time it is served.
	DropTail Policy = iota
	// DropFront rejects the *oldest* queued request and accepts the
	// arrival at the back; service stays FIFO. Under overload this
	// spends capacity on young requests whose clients are still waiting,
	// instead of old ones whose clients have likely timed out.
	DropFront
	// LIFO serves the newest waiter first and sheds the oldest when
	// full (adaptive LIFO): freshest-first service keeps p50 excellent
	// under saturation at the cost of starving the unlucky oldest, who
	// would have missed their deadline anyway.
	LIFO
)

// String returns the flag-friendly policy name.
func (p Policy) String() string {
	switch p {
	case DropTail:
		return "droptail"
	case DropFront:
		return "dropfront"
	case LIFO:
		return "lifo"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses a policy name as accepted by CLI flags.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "droptail", "tail":
		return DropTail, nil
	case "dropfront", "front":
		return DropFront, nil
	case "lifo":
		return LIFO, nil
	default:
		return 0, fmt.Errorf("admit: unknown policy %q (want droptail, dropfront, or lifo)", s)
	}
}

// Config shapes a node's admission controller.
type Config struct {
	// Rate is the sustained admission rate in requests per second.
	Rate float64
	// Burst is the token-bucket capacity: how many requests may be
	// admitted back to back after an idle period. Defaults to 1.
	Burst int
	// Depth bounds the request queue (waiters in blocking mode, token
	// debt in non-blocking mode). Defaults to 1.
	Depth int
	// Policy decides shedding and service order. Default DropTail.
	Policy Policy
	// Clock supplies the current time in blocking and non-blocking
	// modes; defaults to time.Now. Virtual-time Offer ignores it — the
	// driver passes arrival times explicitly.
	Clock func() time.Time
}

// waiter is one parked Admit call or one virtual-time Offer.
type waiter struct {
	arrived time.Time
	// ch resolves a blocking Admit (nil error = admitted). Nil for
	// virtual offers.
	ch chan error
	// fn resolves a virtual Offer. Nil for blocking waiters.
	fn func(Decision)
}

// Decision is the outcome of a virtual-time Offer.
type Decision struct {
	// Granted reports whether the request was admitted.
	Granted bool
	// At is the virtual time the request was granted service (equals
	// the arrival time when a token was free). Zero if shed.
	At time.Time
	// Wait is At minus the arrival time.
	Wait time.Duration
}

// Controller is one node's admission control. Safe for concurrent use.
type Controller struct {
	cfg Config

	mu     sync.Mutex
	tokens float64 // may go negative (token debt) in TryAdmit mode
	last   time.Time
	inited bool
	queue  []waiter
	// dispatching reports whether the blocking-mode dispatcher
	// goroutine is running.
	dispatching bool

	admitted  int64
	shed      int64
	waitNanos int64
}

// New creates a controller. Rate must be > 0; Burst and Depth default
// to 1 when unset.
func New(cfg Config) *Controller {
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("admit: rate must be > 0, got %g", cfg.Rate))
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 1
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Controller{cfg: cfg, tokens: float64(cfg.Burst)}
}

// Config returns the controller's (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// tokenWait returns how long until the bucket holds one token,
// rounded to the nearest nanosecond so virtual grant times don't
// accumulate float-truncation drift.
func tokenWait(tokens, rate float64) time.Duration {
	if tokens >= 1 {
		return 0
	}
	return time.Duration(math.Round((1 - tokens) / rate * float64(time.Second)))
}

// refillLocked advances the bucket to time now.
func (c *Controller) refillLocked(now time.Time) {
	if !c.inited {
		c.inited = true
		c.last = now
		return
	}
	if d := now.Sub(c.last); d > 0 {
		c.tokens += d.Seconds() * c.cfg.Rate
		if c.tokens > float64(c.cfg.Burst) {
			c.tokens = float64(c.cfg.Burst)
		}
		c.last = now
	}
}

// TryAdmit is the non-blocking entry point used on the routed overlay
// path. The bounded queue is modeled as token debt: a request is
// admitted as long as the bucket stays above -Depth, so at most
// Burst+Depth requests are absorbed beyond the sustained rate before
// rejection starts. Returns nil or an error wrapping
// netsim.ErrOverloaded.
func (c *Controller) TryAdmit() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refillLocked(c.cfg.Clock())
	if c.tokens-1 >= -float64(c.cfg.Depth) {
		c.tokens--
		c.admitted++
		return nil
	}
	c.shed++
	return fmt.Errorf("%w: queue depth %d exceeded", netsim.ErrOverloaded, c.cfg.Depth)
}

// Admit is the blocking entry point used by real TCP servers. It
// returns nil once a token is granted, an ErrOverloaded-wrapping error
// if this request (or, under DropFront/LIFO, an older one in its
// place... in which case this one waits) is shed, or the context's
// error if the caller gave up first.
func (c *Controller) Admit(ctx context.Context) error {
	c.mu.Lock()
	now := c.cfg.Clock()
	c.refillLocked(now)
	// Fast path: a token is free and nobody is ahead of us.
	if len(c.queue) == 0 && c.tokens >= 1 {
		c.tokens--
		c.admitted++
		c.mu.Unlock()
		return nil
	}
	w := waiter{arrived: now, ch: make(chan error, 1)}
	if len(c.queue) >= c.cfg.Depth {
		switch c.cfg.Policy {
		case DropTail:
			c.shed++
			c.mu.Unlock()
			return fmt.Errorf("%w: queue depth %d exceeded", netsim.ErrOverloaded, c.cfg.Depth)
		default: // DropFront, LIFO: evict the oldest waiter.
			old := c.queue[0]
			c.queue = append(c.queue[:0], c.queue[1:]...)
			c.shed++
			old.ch <- fmt.Errorf("%w: shed from queue front", netsim.ErrOverloaded)
		}
	}
	c.queue = append(c.queue, w)
	if !c.dispatching {
		c.dispatching = true
		go c.dispatch()
	}
	c.mu.Unlock()

	select {
	case err := <-w.ch:
		return err
	case <-ctx.Done():
		c.abandon(w.ch)
		return netsim.CtxErr(ctx)
	}
}

// abandon removes a waiter whose caller gave up. If the dispatcher
// already resolved it, the buffered channel just gets garbage
// collected.
func (c *Controller) abandon(ch chan error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.queue {
		if c.queue[i].ch == ch {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

// dispatch grants queued waiters as tokens refill. It exits when the
// queue empties.
func (c *Controller) dispatch() {
	for {
		c.mu.Lock()
		now := c.cfg.Clock()
		c.refillLocked(now)
		if len(c.queue) == 0 {
			c.dispatching = false
			c.mu.Unlock()
			return
		}
		if c.tokens >= 1 {
			var w waiter
			if c.cfg.Policy == LIFO {
				w = c.queue[len(c.queue)-1]
				c.queue = c.queue[:len(c.queue)-1]
			} else {
				w = c.queue[0]
				c.queue = append(c.queue[:0], c.queue[1:]...)
			}
			c.tokens--
			c.admitted++
			c.waitNanos += now.Sub(w.arrived).Nanoseconds()
			w.ch <- nil
			c.mu.Unlock()
			continue
		}
		// Sleep until the next token arrives.
		d := tokenWait(c.tokens, c.cfg.Rate)
		c.mu.Unlock()
		if d < time.Microsecond {
			d = time.Microsecond
		}
		time.Sleep(d)
	}
}

// Offer submits a request arriving at virtual time t; arrivals must be
// submitted in nondecreasing t order. fn is called exactly once —
// possibly during this call, possibly during a later Offer or Drain —
// with the grant or shed decision. All resolution happens synchronously
// on the caller's goroutine, so a fixed arrival schedule yields a
// bit-identical decision schedule.
func (c *Controller) Offer(t time.Time, fn func(Decision)) {
	c.mu.Lock()
	var resolved []func()
	c.advanceLocked(t, &resolved)
	if len(c.queue) == 0 && c.tokens >= 1 {
		c.tokens--
		c.admitted++
		resolved = append(resolved, func() { fn(Decision{Granted: true, At: t}) })
	} else if len(c.queue) >= c.cfg.Depth {
		switch c.cfg.Policy {
		case DropTail:
			c.shed++
			resolved = append(resolved, func() { fn(Decision{}) })
		default: // DropFront, LIFO
			old := c.queue[0]
			c.queue = append(c.queue[:0], c.queue[1:]...)
			c.shed++
			resolved = append(resolved, func() { old.fn(Decision{}) })
			c.queue = append(c.queue, waiter{arrived: t, fn: fn})
		}
	} else {
		c.queue = append(c.queue, waiter{arrived: t, fn: fn})
	}
	c.mu.Unlock()
	for _, r := range resolved {
		r()
	}
}

// advanceLocked grants queued virtual waiters whose token-arrival times
// fall at or before t. Grant callbacks are appended to resolved and run
// by the caller outside the lock.
func (c *Controller) advanceLocked(t time.Time, resolved *[]func()) {
	if !c.inited {
		c.inited = true
		c.last = t
		return
	}
	for len(c.queue) > 0 {
		// Virtual time at which the next token exists.
		g := c.last.Add(tokenWait(c.tokens, c.cfg.Rate))
		if g.After(t) {
			break
		}
		c.refillLocked(g)
		var w waiter
		if c.cfg.Policy == LIFO {
			w = c.queue[len(c.queue)-1]
			c.queue = c.queue[:len(c.queue)-1]
		} else {
			w = c.queue[0]
			c.queue = append(c.queue[:0], c.queue[1:]...)
		}
		c.tokens--
		c.admitted++
		wait := g.Sub(w.arrived)
		c.waitNanos += wait.Nanoseconds()
		fn, at := w.fn, g
		*resolved = append(*resolved, func() { fn(Decision{Granted: true, At: at, Wait: wait}) })
	}
	c.refillLocked(t)
}

// Drain resolves all still-queued virtual offers at their natural
// token-arrival times. Call once after the last Offer.
func (c *Controller) Drain() {
	c.mu.Lock()
	var resolved []func()
	for len(c.queue) > 0 {
		g := c.last.Add(tokenWait(c.tokens, c.cfg.Rate))
		c.advanceLocked(g, &resolved)
	}
	c.mu.Unlock()
	for _, r := range resolved {
		r()
	}
}

// LoadHint reports queue occupancy scaled to 0-255: 0 is idle, 255 is
// a full queue about to shed. In TryAdmit mode occupancy is the token
// debt. Replies piggyback this so clients can prefer less-loaded
// replicas.
func (c *Controller) LoadHint() uint8 {
	c.mu.Lock()
	defer c.mu.Unlock()
	occ := float64(len(c.queue))
	if debt := -c.tokens; debt > occ {
		occ = debt
	}
	h := occ / float64(c.cfg.Depth) * 255
	if h > 255 {
		h = 255
	}
	if h < 0 {
		h = 0
	}
	return uint8(h)
}

// Admitted returns the number of requests granted.
func (c *Controller) Admitted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.admitted
}

// Shed returns the number of requests rejected with ErrOverloaded.
func (c *Controller) Shed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shed
}

// QueueLen returns the current number of queued requests.
func (c *Controller) QueueLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// ObsCounters implements obs.CounterSource, exporting admission
// counters into node snapshots and Prometheus exposition.
func (c *Controller) ObsCounters() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return map[string]int64{
		CtrAdmitted:  c.admitted,
		CtrShed:      c.shed,
		CtrWaitNanos: c.waitNanos,
		CtrQueueLen:  int64(len(c.queue)),
	}
}

// Counter names exported through obs.CounterSource.
const (
	CtrAdmitted  = "admit_admitted_total"
	CtrShed      = "admit_shed_total"
	CtrWaitNanos = "admit_wait_ns_total"
	CtrQueueLen  = "admit_queue_len"
)
