package admit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"past/internal/netsim"
)

// vt returns a fixed virtual-time origin plus an offset.
func vt(ms int) time.Time {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return base.Add(time.Duration(ms) * time.Millisecond)
}

func TestPolicyParseRoundTrip(t *testing.T) {
	for _, p := range []Policy{DropTail, DropFront, LIFO} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v err %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("want error for unknown policy")
	}
}

func TestTryAdmitTokenDebt(t *testing.T) {
	// Rate 1000/s, burst 2, depth 3: from a full bucket, 2 burst tokens
	// plus 3 debt slots admit 5 back-to-back requests; the 6th sheds.
	now := vt(0)
	c := New(Config{Rate: 1000, Burst: 2, Depth: 3, Clock: func() time.Time { return now }})
	for i := 0; i < 5; i++ {
		if err := c.TryAdmit(); err != nil {
			t.Fatalf("request %d rejected: %v", i, err)
		}
	}
	err := c.TryAdmit()
	if !errors.Is(err, netsim.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if !netsim.Retryable(err) {
		t.Fatal("overload must be retryable")
	}
	if c.Admitted() != 5 || c.Shed() != 1 {
		t.Fatalf("counters: admitted=%d shed=%d", c.Admitted(), c.Shed())
	}
	// One token refills per millisecond; advancing 2ms readmits 2.
	now = vt(2)
	if err := c.TryAdmit(); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if err := c.TryAdmit(); err != nil {
		t.Fatalf("after refill 2: %v", err)
	}
	if err := c.TryAdmit(); !errors.Is(err, netsim.ErrOverloaded) {
		t.Fatalf("debt must be capped again: %v", err)
	}
}

func TestLoadHintTracksDebt(t *testing.T) {
	now := vt(0)
	c := New(Config{Rate: 1000, Burst: 1, Depth: 4, Clock: func() time.Time { return now }})
	if h := c.LoadHint(); h != 0 {
		t.Fatalf("idle hint = %d", h)
	}
	var prev uint8
	for i := 0; i < 5; i++ {
		c.TryAdmit()
		h := c.LoadHint()
		if h < prev {
			t.Fatalf("hint not monotone under debt: %d after %d", h, prev)
		}
		prev = h
	}
	if prev != 255 {
		t.Fatalf("full-queue hint = %d; want 255", prev)
	}
}

// offerAll submits n arrivals gap apart and returns the decisions in
// arrival order.
func offerAll(c *Controller, n int, start time.Time, gap time.Duration) []Decision {
	out := make([]Decision, n)
	for i := 0; i < n; i++ {
		i := i
		c.Offer(start.Add(time.Duration(i)*gap), func(d Decision) { out[i] = d })
	}
	c.Drain()
	return out
}

func TestOfferGrantsAtTokenTimes(t *testing.T) {
	// Rate 100/s => one token per 10ms. Arrivals every 1ms: the first is
	// served at once (full bucket), later ones wait for their token.
	c := New(Config{Rate: 100, Burst: 1, Depth: 10})
	ds := offerAll(c, 4, vt(0), time.Millisecond)
	if !ds[0].Granted || ds[0].Wait != 0 {
		t.Fatalf("first arrival: %+v", ds[0])
	}
	// Second arrival at t=1ms, token at t=10ms -> wait 9ms.
	if !ds[1].Granted || ds[1].Wait != 9*time.Millisecond {
		t.Fatalf("second arrival: %+v", ds[1])
	}
	if !ds[2].Granted || ds[2].Wait != 18*time.Millisecond {
		t.Fatalf("third arrival: %+v", ds[2])
	}
	if got := c.Admitted(); got != 4 {
		t.Fatalf("admitted = %d", got)
	}
}

func TestOfferDropTailShedsArrivals(t *testing.T) {
	// Depth 2, one token burst: arrival 0 is served, 1 and 2 queue,
	// 3 and 4 shed (tail drop), leaving the queue order FIFO.
	c := New(Config{Rate: 10, Burst: 1, Depth: 2, Policy: DropTail})
	ds := offerAll(c, 5, vt(0), time.Millisecond)
	wantGrant := []bool{true, true, true, false, false}
	for i, w := range wantGrant {
		if ds[i].Granted != w {
			t.Fatalf("arrival %d granted=%v want %v (%+v)", i, ds[i].Granted, w, ds)
		}
	}
	// FIFO service: arrival 1 served before arrival 2.
	if !ds[1].At.Before(ds[2].At) {
		t.Fatalf("FIFO order violated: %v vs %v", ds[1].At, ds[2].At)
	}
	if c.Shed() != 2 {
		t.Fatalf("shed = %d", c.Shed())
	}
}

func TestOfferDropFrontShedsOldest(t *testing.T) {
	// Same load, drop-from-front: the *oldest queued* arrivals are shed
	// so the freshest ones are served.
	c := New(Config{Rate: 10, Burst: 1, Depth: 2, Policy: DropFront})
	ds := offerAll(c, 5, vt(0), time.Millisecond)
	wantGrant := []bool{true, false, false, true, true}
	for i, w := range wantGrant {
		if ds[i].Granted != w {
			t.Fatalf("arrival %d granted=%v want %v (%+v)", i, ds[i].Granted, w, ds)
		}
	}
}

func TestOfferLIFOServesNewestFirst(t *testing.T) {
	// LIFO with room: arrivals 1..3 queue behind arrival 0; service
	// order is newest-first.
	c := New(Config{Rate: 10, Burst: 1, Depth: 3, Policy: LIFO})
	ds := offerAll(c, 4, vt(0), time.Millisecond)
	for i, d := range ds {
		if !d.Granted {
			t.Fatalf("arrival %d shed: %+v", i, ds)
		}
	}
	// Newest (3) granted before oldest queued (1).
	if !ds[3].At.Before(ds[1].At) {
		t.Fatalf("LIFO order violated: newest at %v, oldest at %v", ds[3].At, ds[1].At)
	}
}

func TestOfferDeterministic(t *testing.T) {
	run := func() string {
		c := New(Config{Rate: 250, Burst: 4, Depth: 8, Policy: DropFront})
		ds := offerAll(c, 200, vt(0), 700*time.Microsecond)
		s := ""
		for _, d := range ds {
			s += fmt.Sprintf("%v/%d;", d.Granted, d.Wait.Nanoseconds())
		}
		return s
	}
	if run() != run() {
		t.Fatal("identical arrival schedules produced different decisions")
	}
}

func TestAdmitBlockingGrantsAndSheds(t *testing.T) {
	// Real-clock blocking mode: burst 1, rate 50/s (20ms per token),
	// depth 1. First call immediate; second queues and is granted after
	// ~20ms; third (while second queued) sheds under DropTail.
	c := New(Config{Rate: 50, Burst: 1, Depth: 1, Policy: DropTail})
	if err := c.Admit(context.Background()); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	var wg sync.WaitGroup
	second := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		second <- c.Admit(context.Background())
	}()
	// Wait until the second call is parked.
	for c.QueueLen() == 0 {
		time.Sleep(time.Millisecond)
	}
	err := c.Admit(context.Background())
	if !errors.Is(err, netsim.ErrOverloaded) {
		t.Fatalf("third admit: want ErrOverloaded, got %v", err)
	}
	wg.Wait()
	if err := <-second; err != nil {
		t.Fatalf("queued admit: %v", err)
	}
}

func TestAdmitContextCancellation(t *testing.T) {
	c := New(Config{Rate: 1, Burst: 1, Depth: 4})
	if err := c.Admit(context.Background()); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := c.Admit(ctx)
	if !errors.Is(err, netsim.ErrTimeout) {
		t.Fatalf("want deadline mapped to ErrTimeout, got %v", err)
	}
	if c.QueueLen() != 0 {
		t.Fatalf("abandoned waiter left in queue: %d", c.QueueLen())
	}
}

func TestAdmitDropFrontEvictsOldestWaiter(t *testing.T) {
	c := New(Config{Rate: 5, Burst: 1, Depth: 1, Policy: DropFront})
	if err := c.Admit(context.Background()); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	first := make(chan error, 1)
	go func() { first <- c.Admit(context.Background()) }()
	for c.QueueLen() == 0 {
		time.Sleep(time.Millisecond)
	}
	// This arrival evicts the parked one and takes its place.
	second := make(chan error, 1)
	go func() { second <- c.Admit(context.Background()) }()
	if err := <-first; !errors.Is(err, netsim.ErrOverloaded) {
		t.Fatalf("evicted waiter: want ErrOverloaded, got %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("replacing waiter: %v", err)
	}
}

func TestAdmitConcurrentClients(t *testing.T) {
	// Race-hunting load: many goroutines hammer one controller. Every
	// call must resolve exactly once, and counters must reconcile.
	c := New(Config{Rate: 20000, Burst: 16, Depth: 8, Policy: DropFront})
	const clients = 32
	const perClient = 50
	var admitted, shed, ctxerr int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
				err := c.Admit(ctx)
				cancel()
				mu.Lock()
				switch {
				case err == nil:
					admitted++
				case errors.Is(err, netsim.ErrOverloaded):
					shed++
				default:
					ctxerr++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if admitted+shed+ctxerr != clients*perClient {
		t.Fatalf("lost calls: %d+%d+%d != %d", admitted, shed, ctxerr, clients*perClient)
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if got := c.Admitted(); got < admitted {
		// Counter may exceed observed admits (a granted-then-cancelled
		// race) but never undercount.
		t.Fatalf("admitted counter %d < observed %d", got, admitted)
	}
}

func TestObsCounters(t *testing.T) {
	now := vt(0)
	c := New(Config{Rate: 1000, Burst: 1, Depth: 1, Clock: func() time.Time { return now }})
	c.TryAdmit()
	c.TryAdmit()
	c.TryAdmit() // shed
	m := c.ObsCounters()
	if m[CtrAdmitted] != 2 || m[CtrShed] != 1 {
		t.Fatalf("counters: %v", m)
	}
	if _, ok := m[CtrQueueLen]; !ok {
		t.Fatal("queue length gauge missing")
	}
}

func TestNewDefaultsAndPanics(t *testing.T) {
	c := New(Config{Rate: 10})
	if c.Config().Burst != 1 || c.Config().Depth != 1 {
		t.Fatalf("defaults: %+v", c.Config())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for rate <= 0")
		}
	}()
	New(Config{Rate: 0})
}
