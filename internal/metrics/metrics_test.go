package metrics

import (
	"math"
	"testing"

	"past/internal/id"
)

func fid(n uint64) id.File { return id.NewFile("f", nil, n) }

func TestUtilizationTracking(t *testing.T) {
	c := NewCollector(1000, 1)
	if c.Utilization() != 0 {
		t.Fatal("empty utilization")
	}
	c.ReplicaStored(fid(1), 200, false)
	c.ReplicaStored(fid(2), 300, true)
	if c.Utilization() != 0.5 || c.StoredBytes() != 500 {
		t.Fatalf("util=%g stored=%d", c.Utilization(), c.StoredBytes())
	}
	c.ReplicaDiscarded(fid(1), 200, false)
	if c.Utilization() != 0.3 {
		t.Fatalf("util=%g after discard", c.Utilization())
	}
	if c.DivertedRatio() != 0.5 {
		t.Fatalf("diverted ratio %g; want 0.5 (1 of 2 stored)", c.DivertedRatio())
	}
}

func TestZeroCapacity(t *testing.T) {
	c := NewCollector(0, 1)
	if c.Utilization() != 0 {
		t.Fatal("zero-capacity utilization must be 0")
	}
	if c.DivertedRatio() != 0 {
		t.Fatal("empty diverted ratio must be 0")
	}
}

func TestTotals(t *testing.T) {
	c := NewCollector(1000, 1)
	c.RecordInsert(0.1, 10, 1, true, 0)
	c.RecordInsert(0.2, 10, 2, true, 1) // one file diversion
	c.RecordInsert(0.3, 10, 3, true, 0) // two
	c.RecordInsert(0.4, 10, 4, true, 0) // three
	c.RecordInsert(0.5, 10, 4, false, 0)
	tot := c.Totals()
	if tot.Total != 5 || tot.Succeeded != 4 || tot.Failed != 1 {
		t.Fatalf("totals %+v", tot)
	}
	if tot.FileDiverted != 3 || tot.Diverted1 != 1 || tot.Diverted2 != 1 || tot.Diverted3 != 1 {
		t.Fatalf("diversion counts %+v", tot)
	}
}

func TestCumulativeFailureSeries(t *testing.T) {
	c := NewCollector(1000, 1)
	// 10 inserts, failures start at 50% utilization.
	for i := 0; i < 10; i++ {
		util := float64(i) / 10
		c.RecordInsert(util, 10, 1, util < 0.5, 0)
	}
	pts := c.CumulativeFailureByUtil(10)
	if len(pts) == 0 {
		t.Fatal("no series points")
	}
	// The series must be non-decreasing in utilization and end at the
	// overall failure ratio 5/10.
	last := pts[len(pts)-1]
	if math.Abs(last.Value-0.5) > 1e-9 {
		t.Fatalf("final cumulative failure %g; want 0.5", last.Value)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Util < pts[i-1].Util {
			t.Fatal("series not sorted by utilization")
		}
	}
}

func TestCumulativeDiversionSeries(t *testing.T) {
	c := NewCollector(1000, 1)
	c.RecordInsert(0.2, 10, 1, true, 0)
	c.RecordInsert(0.4, 10, 2, true, 0)
	c.RecordInsert(0.6, 10, 3, true, 0)
	once := c.CumulativeDiversionByUtil(10, 1) // diverted at least once
	if len(once) == 0 || once[len(once)-1].Value < 0.6 {
		t.Fatalf("diverted>=1 series wrong: %+v", once)
	}
	twice := c.CumulativeDiversionByUtil(10, 2)
	if twice[len(twice)-1].Value < 0.3 || twice[len(twice)-1].Value > 0.34 {
		t.Fatalf("diverted>=2 final %g; want 1/3", twice[len(twice)-1].Value)
	}
}

func TestFailedInsertScatter(t *testing.T) {
	c := NewCollector(1000, 1)
	c.RecordInsert(0.9, 12345, 4, false, 0)
	c.RecordInsert(0.5, 10, 1, true, 0)
	pts := c.FailedInsertScatter()
	if len(pts) != 1 || pts[0].Value != 12345 || pts[0].Util != 0.9 {
		t.Fatalf("scatter %+v", pts)
	}
}

func TestLookupsByUtil(t *testing.T) {
	c := NewCollector(1000, 1)
	c.RecordLookup(0.05, 3, true, false)
	c.RecordLookup(0.05, 1, true, true)
	c.RecordLookup(0.95, 2, true, false)
	c.RecordLookup(0.95, 0, false, false) // not found: excluded
	ls := c.LookupsByUtil(10)
	if ls.Count[0] != 2 || ls.Hops[0] != 2 || ls.HitRate[0] != 0.5 {
		t.Fatalf("bucket0: count=%d hops=%g hit=%g", ls.Count[0], ls.Hops[0], ls.HitRate[0])
	}
	if ls.Count[9] != 1 || ls.Hops[9] != 2 {
		t.Fatalf("bucket9: %d %g", ls.Count[9], ls.Hops[9])
	}
	if ls.Hops[5] != -1 {
		t.Fatal("empty bucket must be marked -1")
	}
	mean, hit, found := c.GlobalLookupStats()
	if found != 3 || math.Abs(mean-2) > 1e-9 || math.Abs(hit-1.0/3) > 1e-9 {
		t.Fatalf("global stats: %g %g %d", mean, hit, found)
	}
}

func TestDivertedSeriesSampling(t *testing.T) {
	c := NewCollector(1000, 2)
	for i := 0; i < 10; i++ {
		c.ReplicaStored(fid(uint64(i)), 10, i%2 == 0)
		c.RecordInsert(float64(i)/10, 10, 1, true, 0)
	}
	if len(c.DivertedSeries) != 5 {
		t.Fatalf("sampled %d points; want 5 (every 2nd insert)", len(c.DivertedSeries))
	}
}

func TestGlobalLookupStatsEmpty(t *testing.T) {
	c := NewCollector(1, 1)
	if m, h, f := c.GlobalLookupStats(); m != 0 || h != 0 || f != 0 {
		t.Fatal("empty lookup stats must be zero")
	}
}

func TestFaultAndViolationCounters(t *testing.T) {
	c := NewCollector(1, 1)
	if len(c.Faults()) != 0 || len(c.Violations()) != 0 || c.TotalViolations() != 0 {
		t.Fatal("fresh collector must report empty fault/violation counts")
	}
	c.RecordFault("drop-request")
	c.RecordFault("drop-request")
	c.RecordFault("partition")
	c.RecordViolation("lost")
	c.RecordViolation("stray-replica")
	c.RecordViolation("stray-replica")
	f := c.Faults()
	if f["drop-request"] != 2 || f["partition"] != 1 {
		t.Fatalf("faults = %v", f)
	}
	v := c.Violations()
	if v["lost"] != 1 || v["stray-replica"] != 2 || c.TotalViolations() != 3 {
		t.Fatalf("violations = %v (total %d)", v, c.TotalViolations())
	}
	// Snapshots must not alias internal state.
	f["drop-request"] = 99
	if c.Faults()["drop-request"] != 2 {
		t.Fatal("Faults() must return a copy")
	}
}

func TestSampleCapDownsampling(t *testing.T) {
	c := NewCollector(1000, 1)
	c.SetSampleCap(64)
	for i := 0; i < 1000; i++ {
		c.RecordLookup(float64(i)/1000, 3, true, false)
		c.RecordInsert(float64(i)/1000, 10, 1, true, 0)
	}
	if c.LookupsSeen() != 1000 || c.InsertsSeen() != 1000 {
		t.Fatalf("seen = %d/%d; want 1000/1000", c.LookupsSeen(), c.InsertsSeen())
	}
	if len(c.Lookups) >= 64 || len(c.Lookups) < 16 {
		t.Fatalf("retained %d lookup samples; want in [16, 64)", len(c.Lookups))
	}
	if len(c.Inserts) >= 64 || len(c.Inserts) < 16 {
		t.Fatalf("retained %d insert samples; want in [16, 64)", len(c.Inserts))
	}
	// The retained set is every stride-th offered sample from the first,
	// so the utilizations must be evenly strided starting at 0.
	stride := c.Lookups[1].Util - c.Lookups[0].Util
	for i := 1; i < len(c.Lookups); i++ {
		got := c.Lookups[i].Util - c.Lookups[i-1].Util
		if math.Abs(got-stride) > 1e-9 {
			t.Fatalf("sample %d: stride %g != %g (not evenly downsampled)", i, got, stride)
		}
	}
	if c.Lookups[0].Util != 0 {
		t.Fatalf("first retained sample must be the first offered, got util %g", c.Lookups[0].Util)
	}
	// DivertedSeries sampling counts offered inserts, not retained ones.
	if len(c.DivertedSeries) != 1000 {
		t.Fatalf("DivertedSeries has %d points; want 1000 (one per offered insert)", len(c.DivertedSeries))
	}
}

func TestSampleCapDeterministic(t *testing.T) {
	run := func() []LookupSample {
		c := NewCollector(1000, 1)
		c.SetSampleCap(32)
		for i := 0; i < 500; i++ {
			c.RecordLookup(float64(i)/500, i%7, i%3 != 0, i%5 == 0)
		}
		return c.Lookups
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs retained %d vs %d samples", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSampleCapDefaultOff(t *testing.T) {
	c := NewCollector(1000, 1)
	for i := 0; i < 500; i++ {
		c.RecordLookup(0.5, 3, true, false)
	}
	if len(c.Lookups) != 500 {
		t.Fatalf("without a cap all %d samples must be retained, got %d", 500, len(c.Lookups))
	}
}

func TestLookupsByUtilNaNAndNegative(t *testing.T) {
	c := NewCollector(0, 1) // zero capacity: Utilization() is 0, but feed samples directly
	c.RecordLookup(math.NaN(), 9, true, false)
	c.RecordLookup(-0.5, 2, true, false)
	c.RecordLookup(0.05, 4, true, true)
	ls := c.LookupsByUtil(10)
	// The NaN sample is skipped entirely; the negative one clamps into
	// bucket 0 alongside the valid 0.05 sample.
	if ls.Count[0] != 2 {
		t.Fatalf("bucket 0 count = %d; want 2 (negative clamp + valid sample, NaN skipped)", ls.Count[0])
	}
	if got := ls.Hops[0]; got != 3 {
		t.Fatalf("bucket 0 mean hops = %g; want 3 (the NaN sample's 9 hops must not leak in)", got)
	}
	total := 0
	for _, n := range ls.Count {
		total += n
	}
	if total != 2 {
		t.Fatalf("total bucketed samples = %d; want 2", total)
	}
}

func TestLatencyQuantileInterpolatesBetweenBucketEdges(t *testing.T) {
	// Regression pin for the percentile-summary fix: quantiles must
	// interpolate between log-histogram bucket edges, not snap to a
	// boundary (nearest-rank). All samples sit inside one wide bucket —
	// a nearest-rank summary would report the same edge for every p.
	c := NewCollector(0, 1)
	for i := 0; i < 500; i++ {
		c.RecordLatency(1 << 20)       // bucket [1048576, 1081344)
		c.RecordLatency(1<<20 + 30000) // same bucket
	}
	q25, q75 := c.LatencyQuantile(25), c.LatencyQuantile(75)
	if !(q25 > 1<<20 && q75 > q25 && q75 < float64(1<<20+30000)) {
		t.Fatalf("not interpolating within bucket: q25=%g q75=%g", q25, q75)
	}
}

func TestLatencySummaryP999Consistency(t *testing.T) {
	// p999 reported by the collector must agree with the underlying
	// histogram's interpolated quantile exactly, and must be within one
	// sub-bucket (~3%) of the exact order-statistic percentile.
	c := NewCollector(0, 1)
	exact := make([]int64, 0, 10000)
	for i := 1; i <= 10000; i++ {
		v := int64(i) * 1000 // 1µs .. 10ms in 1µs steps, in ns
		exact = append(exact, v)
		c.RecordLatency(v)
	}
	_, _, p999 := c.LatencySummary()
	if got := c.Latencies.Quantile(99.9); got != p999 {
		t.Fatalf("summary p999 %g != histogram quantile %g", p999, got)
	}
	want := float64(9_990_000) // exact p999 of the uniform grid (~)
	if math.Abs(p999-want)/want > 0.04 {
		t.Fatalf("p999 = %g; want within 4%% of %g", p999, want)
	}
	p50, p99, _ := c.LatencySummary()
	if !(p50 < p99 && p99 < p999) {
		t.Fatalf("quantiles not monotone: p50=%g p99=%g p999=%g", p50, p99, p999)
	}
}

func TestLookupHopPercentile(t *testing.T) {
	c := NewCollector(0, 1)
	if c.LookupHopPercentile(99) != 0 {
		t.Fatal("empty collector must report 0")
	}
	hops := []int{3, 1, 4, 1, 5, 9, 2, 6}
	for _, h := range hops {
		c.RecordLookup(0.1, h, true, false)
	}
	c.RecordLookup(0.1, 100, false, false) // not found: excluded
	// sorted found hops: 1 1 2 3 4 5 6 9; p50 = 3.5 interpolated
	if got := c.LookupHopPercentile(50); math.Abs(got-3.5) > 1e-9 {
		t.Fatalf("p50 hops = %g; want 3.5", got)
	}
	if got := c.LookupHopPercentile(100); got != 9 {
		t.Fatalf("p100 hops = %g; want 9", got)
	}
}
