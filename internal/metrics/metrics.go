// Package metrics collects the measurements the paper's evaluation
// reports: global storage utilization, insertion success/failure and
// file-diversion counts, replica-diversion ratios, lookup hop counts and
// cache hit rates — each both in aggregate and as a series over the
// storage utilization at the time of the event (the x-axis of every
// figure in section 5).
package metrics

import (
	"math"
	"sync/atomic"

	"past/internal/id"
	"past/internal/stats"
)

// InsertSample records one client-level insert operation.
type InsertSample struct {
	// Util is the global storage utilization when the insert was issued.
	Util float64
	// Size is the file size in bytes.
	Size int64
	// Attempts is 1 + the number of file diversions performed.
	Attempts int
	// OK reports whether the insert eventually succeeded.
	OK bool
	// DivertedReplicas counts replica diversions in the final attempt.
	DivertedReplicas int
}

// LookupSample records one client-level lookup operation.
type LookupSample struct {
	Util      float64
	Hops      int
	Found     bool
	FromCache bool
}

// DivertedPoint samples the cumulative replica-diversion ratio.
type DivertedPoint struct {
	Util  float64
	Ratio float64 // diverted replicas stored so far / replicas stored so far
}

// Collector implements past.Monitor and accumulates client-side samples.
// It is not safe for concurrent use; the experiment drivers are
// single-threaded, like the paper's.
type Collector struct {
	totalCapacity int64
	storedBytes   int64

	// Cumulative (monotone) replica counters, for diversion ratios.
	replicasStored  int64
	divertedStored  int64
	replicasDropped int64

	Inserts []InsertSample
	Lookups []LookupSample

	// Latencies accumulates client-operation latencies in nanoseconds
	// into a log-bucketed histogram (fed by RecordLatency; the load
	// generator records from intended send time).
	Latencies stats.LogHist

	// Per-sample downsampling state (SetSampleCap). A stride of n keeps
	// every nth offered sample, counted from the first; zero or one keeps
	// everything.
	sampleCap    int
	insertSeen   int64
	insertStride int64
	lookupSeen   int64
	lookupStride int64

	// DivertedSeries is sampled after every insert.
	DivertedSeries []DivertedPoint
	sampleEvery    int
	sinceSample    int

	// Fault-injection accounting (the chaos soak wires Core.OnFault and
	// Checker.OnViolation into these).
	faults     map[string]int64
	violations map[string]int64

	// Resilience-layer counters. Atomic, unlike the rest of the
	// collector: hedged attempts run on their own goroutines, so these
	// are the only fields touched off the driver thread.
	retries        atomic.Int64
	hedges         atomic.Int64
	hedgeWins      atomic.Int64
	reroutes       atomic.Int64
	partialInserts atomic.Int64
}

// NewCollector creates a collector for a system with the given total
// advertised capacity. sampleEvery controls how often the cumulative
// replica-diversion ratio is sampled (every Nth insert).
func NewCollector(totalCapacity int64, sampleEvery int) *Collector {
	if sampleEvery <= 0 {
		sampleEvery = 1
	}
	return &Collector{totalCapacity: totalCapacity, sampleEvery: sampleEvery}
}

// Utilization returns current global storage utilization in [0, 1].
func (c *Collector) Utilization() float64 {
	if c.totalCapacity == 0 {
		return 0
	}
	return float64(c.storedBytes) / float64(c.totalCapacity)
}

// StoredBytes returns the bytes currently held in replicas system-wide.
func (c *Collector) StoredBytes() int64 { return c.storedBytes }

// ReplicaStored implements past.Monitor.
func (c *Collector) ReplicaStored(_ id.File, size int64, diverted bool) {
	c.storedBytes += size
	c.replicasStored++
	if diverted {
		c.divertedStored++
	}
}

// ReplicaDiscarded implements past.Monitor.
func (c *Collector) ReplicaDiscarded(_ id.File, size int64, _ bool) {
	c.storedBytes -= size
	c.replicasDropped++
}

// DivertedRatio returns diverted/stored over the whole run (cumulative,
// as Figure 5 plots it).
func (c *Collector) DivertedRatio() float64 {
	if c.replicasStored == 0 {
		return 0
	}
	return float64(c.divertedStored) / float64(c.replicasStored)
}

// SetSampleCap bounds the retained Inserts and Lookups sample slices,
// which otherwise grow without limit over a long-running soak (one
// sample per client operation, forever). When the retained count for a
// series reaches max, the series is compacted to every 2nd sample and
// the retention stride doubles: from then on only every stride-th
// offered sample is appended. The scheme is purely counter-based —
// deterministic, no RNG — and the retained set is always "every
// stride-th operation from the first", so utilization-axis series keep
// their shape. Derived figures then describe the retained subsample.
// max <= 0 (the default) disables capping and retains everything.
func (c *Collector) SetSampleCap(max int) {
	c.sampleCap = max
}

// keepSample reports whether the n-th offered sample (1-based) survives
// the current stride.
func keepSample(n, stride int64) bool {
	if stride <= 1 {
		return true
	}
	return (n-1)%stride == 0
}

// halve keeps every 2nd element of s, in place, starting with the first.
func halve[T any](s []T) []T {
	out := s[:0]
	for i := 0; i < len(s); i += 2 {
		out = append(out, s[i])
	}
	return out
}

// RecordInsert adds a client-side insert sample. util should be sampled
// before the insert executed.
func (c *Collector) RecordInsert(util float64, size int64, attempts int, ok bool, diverted int) {
	c.insertSeen++
	if c.sampleCap > 0 && c.insertStride == 0 {
		c.insertStride = 1
	}
	if keepSample(c.insertSeen, c.insertStride) {
		c.Inserts = append(c.Inserts, InsertSample{
			Util: util, Size: size, Attempts: attempts, OK: ok, DivertedReplicas: diverted,
		})
		if c.sampleCap > 0 && len(c.Inserts) >= c.sampleCap {
			c.Inserts = halve(c.Inserts)
			c.insertStride *= 2
		}
	}
	c.sinceSample++
	if c.sinceSample >= c.sampleEvery {
		c.sinceSample = 0
		c.DivertedSeries = append(c.DivertedSeries, DivertedPoint{
			Util: c.Utilization(), Ratio: c.DivertedRatio(),
		})
	}
}

// InsertsSeen returns how many insert samples were offered (recorded
// operations, not retained samples).
func (c *Collector) InsertsSeen() int64 { return c.insertSeen }

// LookupsSeen returns how many lookup samples were offered.
func (c *Collector) LookupsSeen() int64 { return c.lookupSeen }

// RecordFault counts one injected fault of the given kind (message
// drop, duplication, partition, churn, ...).
func (c *Collector) RecordFault(kind string) {
	if c.faults == nil {
		c.faults = make(map[string]int64)
	}
	c.faults[kind]++
}

// Faults returns a snapshot of per-kind injected-fault counts.
func (c *Collector) Faults() map[string]int64 { return copyCounts(c.faults) }

// RecordViolation counts one invariant violation of the given kind.
func (c *Collector) RecordViolation(kind string) {
	if c.violations == nil {
		c.violations = make(map[string]int64)
	}
	c.violations[kind]++
}

// Violations returns a snapshot of per-kind invariant-violation counts.
func (c *Collector) Violations() map[string]int64 { return copyCounts(c.violations) }

// TotalViolations returns the number of invariant violations recorded.
func (c *Collector) TotalViolations() int64 {
	var n int64
	for _, v := range c.violations {
		n += v
	}
	return n
}

func copyCounts(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// RecordRetry implements past.ResilienceMonitor: one backed-off
// re-attempt of a client operation.
func (c *Collector) RecordRetry() { c.retries.Add(1) }

// RecordHedge implements past.ResilienceMonitor: one hedged attempt
// launched; won reports whether the hedge (not the primary) supplied
// the result.
func (c *Collector) RecordHedge(won bool) {
	c.hedges.Add(1)
	if won {
		c.hedgeWins.Add(1)
	}
}

// RecordReroute implements past.ResilienceMonitor: one next hop
// presumed failed and routed around.
func (c *Collector) RecordReroute() { c.reroutes.Add(1) }

// RecordPartialInsert implements past.ResilienceMonitor: one insert
// that stored at least one but fewer than k replicas, leaving a repair
// debt for maintenance.
func (c *Collector) RecordPartialInsert() { c.partialInserts.Add(1) }

// Retries returns the number of client-operation retries recorded.
func (c *Collector) Retries() int64 { return c.retries.Load() }

// Hedges returns the number of hedged attempts launched.
func (c *Collector) Hedges() int64 { return c.hedges.Load() }

// HedgeWins returns how many hedged attempts supplied the result.
func (c *Collector) HedgeWins() int64 { return c.hedgeWins.Load() }

// Reroutes returns the number of per-hop reroutes recorded.
func (c *Collector) Reroutes() int64 { return c.reroutes.Load() }

// PartialInserts returns the number of partial-success inserts.
func (c *Collector) PartialInserts() int64 { return c.partialInserts.Load() }

// RecordLatency adds one client-operation latency observation in
// nanoseconds.
func (c *Collector) RecordLatency(nanos int64) {
	c.Latencies.Record(nanos)
}

// LatencyQuantile returns the p-th percentile (0-100) of recorded
// latencies in nanoseconds. The summary interpolates linearly between
// the edges of the histogram bucket the rank lands in — not
// nearest-rank, which would snap every report to a bucket boundary and
// make p999 jump in ~3% steps as samples arrive.
func (c *Collector) LatencyQuantile(p float64) float64 {
	return c.Latencies.Quantile(p)
}

// LatencySummary returns the p50, p99, and p999 latencies in
// nanoseconds.
func (c *Collector) LatencySummary() (p50, p99, p999 float64) {
	return c.Latencies.Quantile(50), c.Latencies.Quantile(99), c.Latencies.Quantile(99.9)
}

// LookupHopPercentile returns the interpolated p-th percentile of
// routing hops over found lookups.
func (c *Collector) LookupHopPercentile(p float64) float64 {
	var hops []int64
	for _, s := range c.Lookups {
		if s.Found {
			hops = append(hops, int64(s.Hops))
		}
	}
	if len(hops) == 0 {
		return 0
	}
	sortInt64(hops)
	return stats.PercentileInterp(hops, p)
}

func sortInt64(xs []int64) {
	// Insertion-free path for the tiny hop-count domain: counting sort.
	var max int64
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	counts := make([]int64, max+1)
	for _, x := range xs {
		counts[x]++
	}
	i := 0
	for v, n := range counts {
		for ; n > 0; n-- {
			xs[i] = int64(v)
			i++
		}
	}
}

// RecordLookup adds a client-side lookup sample.
func (c *Collector) RecordLookup(util float64, hops int, found, fromCache bool) {
	c.lookupSeen++
	if c.sampleCap > 0 && c.lookupStride == 0 {
		c.lookupStride = 1
	}
	if !keepSample(c.lookupSeen, c.lookupStride) {
		return
	}
	c.Lookups = append(c.Lookups, LookupSample{Util: util, Hops: hops, Found: found, FromCache: fromCache})
	if c.sampleCap > 0 && len(c.Lookups) >= c.sampleCap {
		c.Lookups = halve(c.Lookups)
		c.lookupStride *= 2
	}
}

// InsertTotals summarizes insert outcomes.
type InsertTotals struct {
	Total, Succeeded, Failed int
	// FileDiverted counts successful inserts that needed >= 1 re-salt.
	FileDiverted int
	// Diverted1/2/3 count inserts by number of file diversions.
	Diverted1, Diverted2, Diverted3 int
}

// Totals computes aggregate insert statistics.
func (c *Collector) Totals() InsertTotals {
	var t InsertTotals
	for _, s := range c.Inserts {
		t.Total++
		if s.OK {
			t.Succeeded++
			if s.Attempts > 1 {
				t.FileDiverted++
			}
			switch s.Attempts {
			case 2:
				t.Diverted1++
			case 3:
				t.Diverted2++
			case 4:
				t.Diverted3++
			}
		} else {
			t.Failed++
		}
	}
	return t
}

// Point is one (utilization, value) sample of a figure series.
type Point struct {
	Util  float64
	Value float64
}

// CumulativeFailureByUtil computes the cumulative-failure-ratio series
// of Figures 2, 3, 4, 6, and 7: at each utilization bucket boundary, the
// fraction of all insertions so far that failed. buckets is the number
// of utilization buckets across [0, 1].
func (c *Collector) CumulativeFailureByUtil(buckets int) []Point {
	return cumulativeSeries(c.Inserts, buckets, func(s InsertSample) bool { return !s.OK })
}

// CumulativeDiversionByUtil computes, for inserts diverted at least
// `times` times, the cumulative ratio series of Figure 4.
func (c *Collector) CumulativeDiversionByUtil(buckets, times int) []Point {
	return cumulativeSeries(c.Inserts, buckets, func(s InsertSample) bool {
		return s.OK && s.Attempts > times
	})
}

func cumulativeSeries(samples []InsertSample, buckets int, pred func(InsertSample) bool) []Point {
	if buckets <= 0 {
		buckets = 100
	}
	var out []Point
	count, match := 0, 0
	next := 1
	for _, s := range samples {
		count++
		if pred(s) {
			match++
		}
		for s.Util*float64(buckets) >= float64(next) {
			out = append(out, Point{Util: float64(next) / float64(buckets), Value: float64(match) / float64(count)})
			next++
		}
	}
	if count > 0 {
		out = append(out, Point{Util: lastUtil(samples), Value: float64(match) / float64(count)})
	}
	return out
}

func lastUtil(samples []InsertSample) float64 {
	if len(samples) == 0 {
		return 0
	}
	return samples[len(samples)-1].Util
}

// FailedInsertScatter returns the (utilization, size) points of failed
// insertions — Figure 6/7's scatter plot.
func (c *Collector) FailedInsertScatter() []Point {
	var out []Point
	for _, s := range c.Inserts {
		if !s.OK {
			out = append(out, Point{Util: s.Util, Value: float64(s.Size)})
		}
	}
	return out
}

// LookupSeries aggregates lookups into utilization buckets, returning
// per-bucket mean hops and cache hit rate — Figure 8's two curves.
type LookupSeries struct {
	BucketLo []float64 // bucket lower bounds
	Hops     []float64 // mean routing hops per bucket (NaN-free: -1 if empty)
	HitRate  []float64 // cache hit rate per bucket (-1 if empty)
	Count    []int
}

// LookupsByUtil buckets lookup samples by utilization.
func (c *Collector) LookupsByUtil(buckets int) LookupSeries {
	ls := LookupSeries{
		BucketLo: make([]float64, buckets),
		Hops:     make([]float64, buckets),
		HitRate:  make([]float64, buckets),
		Count:    make([]int, buckets),
	}
	hopSum := make([]float64, buckets)
	hits := make([]int, buckets)
	for i := range ls.BucketLo {
		ls.BucketLo[i] = float64(i) / float64(buckets)
	}
	for _, s := range c.Lookups {
		if !s.Found {
			continue
		}
		if math.IsNaN(s.Util) {
			// A NaN utilization (zero-capacity harness, 0/0) converts to
			// int as an unspecified value; don't let it pollute a bucket.
			continue
		}
		b := int(s.Util * float64(buckets))
		if b < 0 {
			// Negative utilization is a harness accounting bug; clamp to
			// the first bucket rather than corrupting memory-adjacent
			// buckets via a negative index.
			b = 0
		}
		if b >= buckets {
			b = buckets - 1
		}
		ls.Count[b]++
		hopSum[b] += float64(s.Hops)
		if s.FromCache {
			hits[b]++
		}
	}
	for b := 0; b < buckets; b++ {
		if ls.Count[b] == 0 {
			ls.Hops[b] = -1
			ls.HitRate[b] = -1
			continue
		}
		ls.Hops[b] = hopSum[b] / float64(ls.Count[b])
		ls.HitRate[b] = float64(hits[b]) / float64(ls.Count[b])
	}
	return ls
}

// GlobalLookupStats returns overall mean hops and hit rate.
func (c *Collector) GlobalLookupStats() (meanHops, hitRate float64, found int) {
	var hops float64
	var hits int
	for _, s := range c.Lookups {
		if !s.Found {
			continue
		}
		found++
		hops += float64(s.Hops)
		if s.FromCache {
			hits++
		}
	}
	if found == 0 {
		return 0, 0, 0
	}
	return hops / float64(found), float64(hits) / float64(found), found
}
