package store

import "past/internal/id"

// Backend is the storage interface a PAST node drives. The in-memory
// Store is the default (and what the trace experiments use); DiskStore
// persists replica contents and file-table metadata under a directory
// so a node's disk survives process restarts, which is what the paper's
// recovery path assumes ("a recovering node ... whose disk contents
// were lost" being the exceptional case).
type Backend interface {
	// Capacity returns the advertised capacity in bytes.
	Capacity() int64
	// Used returns bytes occupied by replicas.
	Used() int64
	// Free returns remaining free space FN.
	Free() int64
	// Len returns the number of replicas held.
	Len() int
	// Utilization returns Used/Capacity in [0, 1].
	Utilization() float64
	// CanAccept applies the SD/FN acceptance policy.
	CanAccept(size int64, t float64) bool
	// Add stores a replica.
	Add(e Entry) error
	// Get returns the replica entry for f, with content if stored.
	Get(f id.File) (Entry, bool)
	// Remove discards the replica of f.
	Remove(f id.File) (Entry, bool)
	// SetPointer records a diverted-replica reference.
	SetPointer(p Pointer)
	// GetPointer returns the pointer entry for f.
	GetPointer(f id.File) (Pointer, bool)
	// RemovePointer deletes the pointer entry for f.
	RemovePointer(f id.File) (Pointer, bool)
	// Entries returns all replica entries ordered by fileId.
	Entries() []Entry
	// Pointers returns all pointer entries ordered by fileId.
	Pointers() []Pointer
}

var _ Backend = (*Store)(nil)
