package store

import (
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"past/internal/id"
)

// DiskStore is a Backend that persists replica contents as files and
// the file-table metadata as a snapshot, both under a data directory:
//
//	<dir>/objects/<aa>/<fileId-hex>   replica contents (aa = first byte)
//	<dir>/meta.gob                    entries + pointers snapshot
//
// Metadata writes are write-through (snapshot rewritten after every
// mutation, via temp-file rename, so a crash leaves either the old or
// the new snapshot). Content files are written before the metadata that
// references them, so a referenced file always exists after recovery.
type DiskStore struct {
	mem *Store // accounting and metadata; Content never kept here
	dir string
}

var _ Backend = (*DiskStore)(nil)

type diskMeta struct {
	Capacity int64
	Entries  []Entry
	Pointers []Pointer
}

// OpenDisk opens (or creates) a disk store at dir with the advertised
// capacity. An existing snapshot is loaded: the node restarts with its
// previous disk contents, ready to Rejoin the overlay.
func OpenDisk(dir string, capacity int64) (*DiskStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: open disk %s: %w", dir, err)
	}
	d := &DiskStore{mem: New(capacity), dir: dir}
	raw, err := os.Open(d.metaPath())
	if errors.Is(err, fs.ErrNotExist) {
		return d, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: open disk %s: %w", dir, err)
	}
	defer raw.Close()
	var meta diskMeta
	if err := gob.NewDecoder(raw).Decode(&meta); err != nil {
		return nil, fmt.Errorf("store: corrupt metadata in %s: %w", dir, err)
	}
	for _, e := range meta.Entries {
		e.Content = nil
		if err := d.mem.Add(e); err != nil {
			return nil, fmt.Errorf("store: replay metadata: %w", err)
		}
	}
	for _, p := range meta.Pointers {
		d.mem.SetPointer(p)
	}
	return d, nil
}

func (d *DiskStore) metaPath() string { return filepath.Join(d.dir, "meta.gob") }

func (d *DiskStore) objectPath(f id.File) string {
	h := hex.EncodeToString(f[:])
	return filepath.Join(d.dir, "objects", h[:2], h)
}

// saveMeta rewrites the metadata snapshot atomically.
func (d *DiskStore) saveMeta() error {
	tmp, err := os.CreateTemp(d.dir, "meta-*")
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	meta := diskMeta{
		Capacity: d.mem.Capacity(),
		Entries:  d.mem.Entries(), // contents are never in mem
		Pointers: d.mem.Pointers(),
	}
	if err := gob.NewEncoder(tmp).Encode(&meta); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.metaPath()); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: snapshot: %w", err)
	}
	return nil
}

// writeFileAtomic writes content via temp-file + rename (the same
// pattern saveMeta uses), so a crash mid-write can never leave a
// truncated object file under the final name: re-adding the same file
// after a restart would otherwise see the torn copy.
func writeFileAtomic(path string, content []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".obj-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(content); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Accounting delegates.

func (d *DiskStore) Capacity() int64                      { return d.mem.Capacity() }
func (d *DiskStore) Used() int64                          { return d.mem.Used() }
func (d *DiskStore) Free() int64                          { return d.mem.Free() }
func (d *DiskStore) Len() int                             { return d.mem.Len() }
func (d *DiskStore) Utilization() float64                 { return d.mem.Utilization() }
func (d *DiskStore) CanAccept(size int64, t float64) bool { return d.mem.CanAccept(size, t) }

// Add stores the replica: content file first, then metadata.
func (d *DiskStore) Add(e Entry) error {
	content := e.Content
	e.Content = nil
	if err := d.mem.Add(e); err != nil {
		return err
	}
	if content != nil {
		p := d.objectPath(e.File)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			d.mem.Remove(e.File)
			return fmt.Errorf("store: write object: %w", err)
		}
		if err := writeFileAtomic(p, content); err != nil {
			d.mem.Remove(e.File)
			return fmt.Errorf("store: write object: %w", err)
		}
	}
	if err := d.saveMeta(); err != nil {
		d.mem.Remove(e.File)
		os.Remove(d.objectPath(e.File))
		return err
	}
	return nil
}

// AddBatch stores many replicas with one metadata snapshot at the end,
// instead of Add's snapshot-per-mutation — the bulk-load path (restore,
// migration, benchmark seeding). On error the in-memory table is rolled
// back to its prior state; object files already written remain and are
// overwritten by a retry.
func (d *DiskStore) AddBatch(entries []Entry) error {
	added := make([]id.File, 0, len(entries))
	rollback := func() {
		for _, f := range added {
			d.mem.Remove(f)
		}
	}
	for _, e := range entries {
		content := e.Content
		e.Content = nil
		if err := d.mem.Add(e); err != nil {
			rollback()
			return err
		}
		added = append(added, e.File)
		if content == nil {
			continue
		}
		p := d.objectPath(e.File)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			rollback()
			return fmt.Errorf("store: write object: %w", err)
		}
		if err := writeFileAtomic(p, content); err != nil {
			rollback()
			return fmt.Errorf("store: write object: %w", err)
		}
	}
	if err := d.saveMeta(); err != nil {
		rollback()
		return err
	}
	return nil
}

// Get returns the entry, loading content from disk when present.
func (d *DiskStore) Get(f id.File) (Entry, bool) {
	e, ok := d.mem.Get(f)
	if !ok {
		return Entry{}, false
	}
	if content, err := os.ReadFile(d.objectPath(f)); err == nil {
		e.Content = content
	}
	return e, true
}

// Remove discards the replica and its content file.
func (d *DiskStore) Remove(f id.File) (Entry, bool) {
	e, ok := d.mem.Remove(f)
	if !ok {
		return Entry{}, false
	}
	os.Remove(d.objectPath(f))
	if err := d.saveMeta(); err != nil {
		// The entry is gone either way; a stale snapshot only
		// over-reports and is corrected at the next mutation.
		return e, true
	}
	return e, true
}

// SetPointer records and persists a pointer.
func (d *DiskStore) SetPointer(p Pointer) {
	d.mem.SetPointer(p)
	_ = d.saveMeta()
}

// GetPointer delegates.
func (d *DiskStore) GetPointer(f id.File) (Pointer, bool) { return d.mem.GetPointer(f) }

// RemovePointer removes and persists.
func (d *DiskStore) RemovePointer(f id.File) (Pointer, bool) {
	p, ok := d.mem.RemovePointer(f)
	if ok {
		_ = d.saveMeta()
	}
	return p, ok
}

// Entries returns metadata entries (contents stay on disk; use Get).
func (d *DiskStore) Entries() []Entry { return d.mem.Entries() }

// Pointers delegates.
func (d *DiskStore) Pointers() []Pointer { return d.mem.Pointers() }
