// Package store implements a PAST node's local storage: the file table
// holding primary replicas, diverted replicas held on behalf of other
// nodes, and the pointer entries created by replica diversion, together
// with the free-space accounting that drives the paper's storage
// acceptance policy.
//
// The acceptance policy (section 3.3.1) is based on the metric SD/FN,
// where SD is the size of file D and FN is the node's remaining free
// space: a node rejects D if SD/FN > t. Primary replica stores use a
// threshold tpri, diverted replica stores the stricter tdiv < tpri, so a
// node keeps room for primary replicas and files are only diverted to
// nodes with substantially more free space.
package store

import (
	"fmt"
	"sort"

	"past/internal/cert"
	"past/internal/id"
)

// Kind classifies a locally held replica.
type Kind uint8

// Replica kinds.
const (
	// Primary is a replica held by one of the k numerically closest nodes.
	Primary Kind = iota
	// DivertedIn is a replica held on behalf of another node (this node
	// is the B of a replica diversion A -> B).
	DivertedIn
)

func (k Kind) String() string {
	switch k {
	case Primary:
		return "primary"
	case DivertedIn:
		return "diverted-in"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// PtrRole classifies a pointer entry in the file table.
type PtrRole uint8

// Pointer roles.
const (
	// DivertedOut marks the entry node A keeps after diverting a replica
	// to node B: lookups reaching A follow the pointer to B.
	DivertedOut PtrRole = iota
	// Backup marks the entry the k+1-th closest node C keeps so that the
	// diverted replica on B survives the failure of A (section 3.3).
	Backup
)

func (r PtrRole) String() string {
	switch r {
	case DivertedOut:
		return "diverted-out"
	case Backup:
		return "backup"
	default:
		return fmt.Sprintf("PtrRole(%d)", uint8(r))
	}
}

// Entry is one locally held replica.
type Entry struct {
	File id.File
	Size int64
	Kind Kind
	// Owner is, for DivertedIn entries, the node that diverted the
	// replica here (the A of A -> B).
	Owner id.Node
	// Content is the replica payload; experiments run with nil content
	// and pure size accounting.
	Content []byte
	// Cert is the file certificate stored alongside the replica, when
	// certificate verification is enabled.
	Cert *cert.FileCertificate
}

// Pointer is a diverted-replica reference in the file table.
type Pointer struct {
	File   id.File
	Target id.Node // the node holding the replica (B)
	Size   int64
	Role   PtrRole
}

// Store is a node's local disk. It is not safe for concurrent use; the
// owning PAST node serializes access.
type Store struct {
	capacity int64
	used     int64
	entries  map[id.File]*Entry
	pointers map[id.File]*Pointer
}

// New creates a store advertising the given capacity in bytes.
func New(capacity int64) *Store {
	if capacity < 0 {
		panic("store: negative capacity")
	}
	return &Store{
		capacity: capacity,
		entries:  make(map[id.File]*Entry),
		pointers: make(map[id.File]*Pointer),
	}
}

// Capacity returns the advertised capacity in bytes.
func (s *Store) Capacity() int64 { return s.capacity }

// Used returns the bytes occupied by replicas (primary + diverted-in).
// Cached copies live in the remaining free space and are accounted by
// the cache, not the store.
func (s *Store) Used() int64 { return s.used }

// Free returns the remaining free space FN.
func (s *Store) Free() int64 { return s.capacity - s.used }

// Len returns the number of replicas held.
func (s *Store) Len() int { return len(s.entries) }

// CanAccept applies the paper's acceptance policy: reject file D when
// SD/FN > t. Zero-sized files are always accepted; a full node rejects
// everything else.
func (s *Store) CanAccept(size int64, t float64) bool {
	if size == 0 {
		return true
	}
	if size < 0 {
		return false
	}
	free := s.Free()
	if free <= 0 {
		return false
	}
	return float64(size)/float64(free) <= t
}

// Add stores a replica. It fails if the file is already held or space is
// insufficient; policy checks (CanAccept) are the caller's duty, since
// primary and diverted stores use different thresholds.
func (s *Store) Add(e Entry) error {
	if _, dup := s.entries[e.File]; dup {
		return fmt.Errorf("store: %s already held", e.File.Short())
	}
	if e.Size < 0 {
		return fmt.Errorf("store: negative size %d", e.Size)
	}
	if e.Size > s.Free() {
		return fmt.Errorf("store: %s needs %d bytes, only %d free", e.File.Short(), e.Size, s.Free())
	}
	cp := e
	s.entries[e.File] = &cp
	s.used += e.Size
	return nil
}

// Get returns the replica entry for f, if held.
func (s *Store) Get(f id.File) (Entry, bool) {
	e, ok := s.entries[f]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Remove discards the replica of f and returns its entry.
func (s *Store) Remove(f id.File) (Entry, bool) {
	e, ok := s.entries[f]
	if !ok {
		return Entry{}, false
	}
	delete(s.entries, f)
	s.used -= e.Size
	return *e, true
}

// SetPointer records a diverted-replica reference. A file has at most
// one pointer per node; overwriting updates it.
func (s *Store) SetPointer(p Pointer) {
	cp := p
	s.pointers[p.File] = &cp
}

// GetPointer returns the pointer entry for f, if any.
func (s *Store) GetPointer(f id.File) (Pointer, bool) {
	p, ok := s.pointers[f]
	if !ok {
		return Pointer{}, false
	}
	return *p, true
}

// RemovePointer deletes the pointer entry for f.
func (s *Store) RemovePointer(f id.File) (Pointer, bool) {
	p, ok := s.pointers[f]
	if !ok {
		return Pointer{}, false
	}
	delete(s.pointers, f)
	return *p, true
}

// Entries returns all replica entries ordered by fileId, for
// deterministic maintenance scans.
func (s *Store) Entries() []Entry {
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		return string(out[i].File[:]) < string(out[j].File[:])
	})
	return out
}

// Pointers returns all pointer entries ordered by fileId.
func (s *Store) Pointers() []Pointer {
	out := make([]Pointer, 0, len(s.pointers))
	for _, p := range s.pointers {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		return string(out[i].File[:]) < string(out[j].File[:])
	})
	return out
}

// Utilization returns used/capacity in [0, 1].
func (s *Store) Utilization() float64 {
	if s.capacity == 0 {
		return 0
	}
	return float64(s.used) / float64(s.capacity)
}
