package store

import (
	"math/rand"
	"testing"
	"testing/quick"

	"past/internal/id"
)

func fid(n uint64) id.File { return id.NewFile("f", nil, n) }

func TestAddGetRemove(t *testing.T) {
	s := New(1000)
	if err := s.Add(Entry{File: fid(1), Size: 300, Kind: Primary}); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 300 || s.Free() != 700 || s.Len() != 1 {
		t.Fatalf("used=%d free=%d len=%d", s.Used(), s.Free(), s.Len())
	}
	e, ok := s.Get(fid(1))
	if !ok || e.Size != 300 || e.Kind != Primary {
		t.Fatalf("get = %+v, %v", e, ok)
	}
	if _, ok := s.Get(fid(2)); ok {
		t.Fatal("phantom entry")
	}
	e, ok = s.Remove(fid(1))
	if !ok || e.Size != 300 {
		t.Fatal("remove failed")
	}
	if s.Used() != 0 || s.Len() != 0 {
		t.Fatal("accounting after remove wrong")
	}
	if _, ok := s.Remove(fid(1)); ok {
		t.Fatal("double remove must fail")
	}
}

func TestAddDuplicateFails(t *testing.T) {
	s := New(1000)
	if err := s.Add(Entry{File: fid(1), Size: 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Entry{File: fid(1), Size: 10}); err == nil {
		t.Fatal("duplicate add must fail")
	}
}

func TestAddOverCapacityFails(t *testing.T) {
	s := New(100)
	if err := s.Add(Entry{File: fid(1), Size: 101}); err == nil {
		t.Fatal("oversize add must fail")
	}
	if err := s.Add(Entry{File: fid(2), Size: -1}); err == nil {
		t.Fatal("negative size must fail")
	}
}

func TestCanAcceptPolicy(t *testing.T) {
	s := New(1000)
	// Empty node, t=0.1: accepts files up to 100 bytes.
	if !s.CanAccept(100, 0.1) {
		t.Fatal("100/1000 = 0.1 <= 0.1 must be accepted")
	}
	if s.CanAccept(101, 0.1) {
		t.Fatal("101/1000 > 0.1 must be rejected")
	}
	// Zero-size files always accepted (both traces contain them).
	if !s.CanAccept(0, 0.0001) {
		t.Fatal("zero-size must be accepted")
	}
	// As the node fills, the acceptable size shrinks: the policy
	// discriminates against large files at high utilization (sec 3.3.1).
	if err := s.Add(Entry{File: fid(1), Size: 900}); err != nil {
		t.Fatal(err)
	}
	if s.CanAccept(11, 0.1) {
		t.Fatal("11/100 > 0.1 must be rejected on the fuller node")
	}
	if !s.CanAccept(10, 0.1) {
		t.Fatal("10/100 <= 0.1 must be accepted")
	}
	// Full node rejects everything but zero-size.
	if err := s.Add(Entry{File: fid(2), Size: 100}); err != nil {
		t.Fatal(err)
	}
	if s.CanAccept(1, 1.0) {
		t.Fatal("full node must reject")
	}
	if !s.CanAccept(0, 1.0) {
		t.Fatal("full node still accepts zero-size")
	}
	if s.CanAccept(-5, 1.0) {
		t.Fatal("negative size must be rejected")
	}
}

func TestTpriBaselineDisablesDiversion(t *testing.T) {
	// The paper's no-diversion baseline sets tpri=1: any file that fits
	// in free space is accepted.
	s := New(1000)
	if !s.CanAccept(1000, 1) {
		t.Fatal("tpri=1 must accept a file equal to free space")
	}
	if s.CanAccept(1001, 1) {
		t.Fatal("a file larger than free space must be rejected even at tpri=1")
	}
}

func TestPointers(t *testing.T) {
	s := New(100)
	b := id.NodeFromUint64(7)
	s.SetPointer(Pointer{File: fid(1), Target: b, Size: 50, Role: DivertedOut})
	p, ok := s.GetPointer(fid(1))
	if !ok || p.Target != b || p.Role != DivertedOut {
		t.Fatalf("pointer = %+v, %v", p, ok)
	}
	// Pointers consume no storage.
	if s.Used() != 0 {
		t.Fatal("pointers must not consume space")
	}
	// Overwrite updates.
	c := id.NodeFromUint64(9)
	s.SetPointer(Pointer{File: fid(1), Target: c, Size: 50, Role: Backup})
	p, _ = s.GetPointer(fid(1))
	if p.Target != c || p.Role != Backup {
		t.Fatal("pointer overwrite failed")
	}
	if _, ok := s.RemovePointer(fid(1)); !ok {
		t.Fatal("remove pointer failed")
	}
	if _, ok := s.GetPointer(fid(1)); ok {
		t.Fatal("pointer survived removal")
	}
	if _, ok := s.RemovePointer(fid(1)); ok {
		t.Fatal("double pointer removal must fail")
	}
}

func TestEntriesSorted(t *testing.T) {
	s := New(1000)
	for i := 0; i < 20; i++ {
		if err := s.Add(Entry{File: fid(uint64(i)), Size: 1}); err != nil {
			t.Fatal(err)
		}
		s.SetPointer(Pointer{File: fid(uint64(100 + i)), Target: id.NodeFromUint64(1)})
	}
	es := s.Entries()
	for i := 1; i < len(es); i++ {
		if string(es[i-1].File[:]) >= string(es[i].File[:]) {
			t.Fatal("entries not sorted")
		}
	}
	ps := s.Pointers()
	if len(ps) != 20 {
		t.Fatalf("pointers = %d", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if string(ps[i-1].File[:]) >= string(ps[i].File[:]) {
			t.Fatal("pointers not sorted")
		}
	}
}

func TestUtilization(t *testing.T) {
	s := New(200)
	if s.Utilization() != 0 {
		t.Fatal("empty utilization must be 0")
	}
	if err := s.Add(Entry{File: fid(1), Size: 50}); err != nil {
		t.Fatal(err)
	}
	if s.Utilization() != 0.25 {
		t.Fatalf("utilization = %g; want 0.25", s.Utilization())
	}
	if New(0).Utilization() != 0 {
		t.Fatal("zero-capacity utilization must be 0")
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(-1)
}

// TestAccountingInvariant property-checks that used+free == capacity and
// used >= 0 across random add/remove sequences.
func TestAccountingInvariant(t *testing.T) {
	f := func(ops []int16, capSeed uint16) bool {
		capacity := int64(capSeed)%10000 + 100
		s := New(capacity)
		held := map[uint64]bool{}
		r := rand.New(rand.NewSource(int64(capSeed)))
		for _, op := range ops {
			k := uint64(op) % 32
			if held[k] {
				if _, ok := s.Remove(fid(k)); !ok {
					return false
				}
				delete(held, k)
			} else {
				size := int64(r.Intn(int(capacity / 4)))
				if err := s.Add(Entry{File: fid(k), Size: size}); err == nil {
					held[k] = true
				}
			}
			if s.Used() < 0 || s.Used()+s.Free() != s.Capacity() || s.Used() > s.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddRemove(b *testing.B) {
	s := New(1 << 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := fid(uint64(i))
		if err := s.Add(Entry{File: f, Size: 1024}); err != nil {
			b.Fatal(err)
		}
		if _, ok := s.Remove(f); !ok {
			b.Fatal("remove failed")
		}
	}
}
