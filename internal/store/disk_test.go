package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"past/internal/id"
)

func TestDiskAddGetRemove(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("persistent bytes")
	if err := d.Add(Entry{File: fid(1), Size: int64(len(content)), Kind: Primary, Content: content}); err != nil {
		t.Fatal(err)
	}
	e, ok := d.Get(fid(1))
	if !ok || !bytes.Equal(e.Content, content) {
		t.Fatalf("get: %v %+v", ok, e)
	}
	if d.Used() != int64(len(content)) || d.Free() != 10_000-int64(len(content)) {
		t.Fatalf("accounting: used=%d free=%d", d.Used(), d.Free())
	}
	// The content file exists on disk.
	if _, err := os.Stat(d.objectPath(fid(1))); err != nil {
		t.Fatal("content file missing")
	}
	if _, ok := d.Remove(fid(1)); !ok {
		t.Fatal("remove failed")
	}
	if _, err := os.Stat(d.objectPath(fid(1))); !os.IsNotExist(err) {
		t.Fatal("content file survived removal")
	}
	if d.Used() != 0 || d.Len() != 0 {
		t.Fatal("accounting after remove")
	}
}

func TestDiskRestartRestoresState(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("survives restarts")
	if err := d.Add(Entry{File: fid(1), Size: int64(len(content)), Kind: Primary, Content: content}); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(Entry{File: fid(2), Size: 50, Kind: DivertedIn, Owner: id.NodeFromUint64(7)}); err != nil {
		t.Fatal(err)
	}
	d.SetPointer(Pointer{File: fid(3), Target: id.NodeFromUint64(9), Size: 30, Role: DivertedOut})

	// "Restart": reopen the same directory.
	d2, err := OpenDisk(dir, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 2 || d2.Used() != int64(len(content))+50 {
		t.Fatalf("restored len=%d used=%d", d2.Len(), d2.Used())
	}
	e, ok := d2.Get(fid(1))
	if !ok || !bytes.Equal(e.Content, content) {
		t.Fatal("content not restored")
	}
	e, ok = d2.Get(fid(2))
	if !ok || e.Kind != DivertedIn || e.Owner != id.NodeFromUint64(7) {
		t.Fatalf("diverted-in metadata not restored: %+v", e)
	}
	p, ok := d2.GetPointer(fid(3))
	if !ok || p.Target != id.NodeFromUint64(9) || p.Role != DivertedOut {
		t.Fatalf("pointer not restored: %+v", p)
	}
}

func TestDiskRemovePersists(t *testing.T) {
	dir := t.TempDir()
	d, _ := OpenDisk(dir, 1_000)
	if err := d.Add(Entry{File: fid(1), Size: 10, Content: []byte("0123456789")}); err != nil {
		t.Fatal(err)
	}
	d.Remove(fid(1))
	d.RemovePointer(fid(99)) // absent: no-op, no snapshot churn needed

	d2, err := OpenDisk(dir, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 0 {
		t.Fatal("removed entry resurrected after restart")
	}
}

func TestDiskCorruptMetadataRejected(t *testing.T) {
	dir := t.TempDir()
	d, _ := OpenDisk(dir, 1_000)
	if err := d.Add(Entry{File: fid(1), Size: 10}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.gob"), []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(dir, 1_000); err == nil {
		t.Fatal("corrupt metadata accepted")
	}
}

func TestDiskPolicyAndInterface(t *testing.T) {
	dir := t.TempDir()
	d, _ := OpenDisk(dir, 1_000)
	if !d.CanAccept(100, 0.1) || d.CanAccept(101, 0.1) {
		t.Fatal("disk CanAccept policy wrong")
	}
	if d.Capacity() != 1_000 || d.Utilization() != 0 {
		t.Fatal("accessors")
	}
	if err := d.Add(Entry{File: fid(1), Size: 10}); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(Entry{File: fid(1), Size: 10}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if len(d.Entries()) != 1 || len(d.Pointers()) != 0 {
		t.Fatal("listing")
	}
}

func TestDiskSizeOnlyEntries(t *testing.T) {
	// Entries without content (size-only accounting) persist fine and
	// come back without content.
	dir := t.TempDir()
	d, _ := OpenDisk(dir, 1_000)
	if err := d.Add(Entry{File: fid(1), Size: 123}); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := d2.Get(fid(1))
	if !ok || e.Size != 123 || e.Content != nil {
		t.Fatalf("size-only entry: %v %+v", ok, e)
	}
}

// TestDiskAddContentWriteIsAtomic pins the temp-file + rename write
// path for object content: while an Add is in flight there must never
// be a partially written file visible under the final object name, and
// a leftover temp file from an interrupted write must not shadow a
// later successful Add.
func TestDiskAddContentWriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("x"), 4096)
	if err := d.Add(Entry{File: fid(1), Size: 4096, Kind: Primary, Content: content}); err != nil {
		t.Fatal(err)
	}
	// The object under its final name is complete.
	got, err := os.ReadFile(d.objectPath(fid(1)))
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("object not fully written: %d bytes, err=%v", len(got), err)
	}
	// No temp files left behind by the rename.
	des, err := os.ReadDir(filepath.Dir(d.objectPath(fid(1))))
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if len(de.Name()) > 4 && de.Name()[:5] == ".obj-" {
			t.Fatalf("leaked temp file %s", de.Name())
		}
	}

	// A torn write from a crashed predecessor (simulated: a stale temp
	// file plus a truncated object) is fully replaced by a fresh Add.
	p := d.objectPath(fid(2))
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte("y"), 1024)
	if err := d2.Add(Entry{File: fid(2), Size: 1024, Kind: Primary, Content: want}); err != nil {
		t.Fatal(err)
	}
	e, ok := d2.Get(fid(2))
	if !ok || !bytes.Equal(e.Content, want) {
		t.Fatalf("torn predecessor survived: %d bytes", len(e.Content))
	}
}
