package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistanceProperties(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Point{math.Mod(math.Abs(ax), 1000), math.Mod(math.Abs(ay), 1000)}
		b := Point{math.Mod(math.Abs(bx), 1000), math.Mod(math.Abs(by), 1000)}
		d := Distance(a, b)
		// Non-negative, symmetric, zero iff equal (within fp exactness here).
		if d < 0 || Distance(b, a) != d {
			return false
		}
		if a == b && d != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	p := DefaultPlane
	for i := 0; i < 1000; i++ {
		a, b, c := p.RandomPoint(r), p.RandomPoint(r), p.RandomPoint(r)
		if Distance(a, c) > Distance(a, b)+Distance(b, c)+1e-9 {
			t.Fatal("triangle inequality violated")
		}
	}
}

func TestUniformInBounds(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := DefaultPlane.Uniform(r, 500)
	if len(pts) != 500 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.X < 0 || pt.X > 1000 || pt.Y < 0 || pt.Y > 1000 {
			t.Fatalf("point %+v out of plane", pt)
		}
	}
}

func TestClustersLocality(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts, member := DefaultPlane.Clusters(r, 400, 8, 20)
	if len(pts) != 400 || len(member) != 400 {
		t.Fatal("bad lengths")
	}
	// Mean intra-cluster distance must be well below mean inter-cluster
	// distance: that is the property the caching experiment relies on.
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < len(pts); i += 7 {
		for j := i + 1; j < len(pts); j += 7 {
			d := Distance(pts[i], pts[j])
			if member[i] == member[j] {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	if nIntra == 0 || nInter == 0 {
		t.Fatal("sampling produced no pairs")
	}
	if intra/float64(nIntra) >= inter/float64(nInter)/2 {
		t.Fatalf("clusters not tight: intra=%g inter=%g",
			intra/float64(nIntra), inter/float64(nInter))
	}
}

func TestClustersRoundRobinBalance(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	_, member := DefaultPlane.Clusters(r, 10, 3, 5)
	counts := map[int]int{}
	for _, m := range member {
		counts[m]++
	}
	if counts[0] != 4 || counts[1] != 3 || counts[2] != 3 {
		t.Fatalf("cluster sizes %v; want 4,3,3", counts)
	}
}

func TestClustersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for k=0")
		}
	}()
	DefaultPlane.Clusters(rand.New(rand.NewSource(1)), 10, 0, 5)
}

func TestClamp(t *testing.T) {
	if clamp(-5, 0, 10) != 0 || clamp(15, 0, 10) != 10 || clamp(5, 0, 10) != 5 {
		t.Fatal("clamp wrong")
	}
}
