// Package topology models network proximity. The paper defines proximity
// as any scalar metric (IP hops, bandwidth, geographic distance); for the
// emulated network we place every node at a point on a bounded 2-D plane
// and use Euclidean distance, the same simplification used by the Pastry
// evaluation. The caching experiment (section 5.2 of the paper) maps the
// clients of each of the eight trace sites onto nodes that are close to
// each other; the Clusters generator produces exactly that layout.
package topology

import (
	"math"
	"math/rand"
)

// Point is a position on the emulated plane.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean proximity metric between two points.
func Distance(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Plane describes the bounded 2-D space nodes live in.
type Plane struct {
	Side float64 // edge length of the square plane
}

// DefaultPlane is the plane used by all experiments: a 1000x1000 square,
// so proximity values fall in [0, ~1414].
var DefaultPlane = Plane{Side: 1000}

// RandomPoint draws a uniformly distributed point on the plane.
func (p Plane) RandomPoint(r *rand.Rand) Point {
	return Point{X: r.Float64() * p.Side, Y: r.Float64() * p.Side}
}

// Uniform returns n points distributed uniformly at random on the plane.
// This is the node layout for the storage experiments, where proximity is
// irrelevant to the results but still exercised by routing.
func (p Plane) Uniform(r *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = p.RandomPoint(r)
	}
	return pts
}

// Clusters places n points into k clusters whose centers are uniform on
// the plane; each point is normally scattered around its cluster center
// with standard deviation spread (clamped to the plane). Points are
// assigned to clusters round-robin so cluster sizes differ by at most
// one. It returns the points and, for each point, its cluster index.
func (p Plane) Clusters(r *rand.Rand, n, k int, spread float64) ([]Point, []int) {
	if k <= 0 {
		panic("topology: Clusters needs k > 0")
	}
	centers := p.Uniform(r, k)
	pts := make([]Point, n)
	member := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		member[i] = c
		pts[i] = Point{
			X: clamp(centers[c].X+r.NormFloat64()*spread, 0, p.Side),
			Y: clamp(centers[c].Y+r.NormFloat64()*spread, 0, p.Side),
		}
	}
	return pts, member
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
