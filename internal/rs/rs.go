// Package rs implements Reed-Solomon erasure coding over GF(2^8),
// the file encoding the paper sketches in section 3.6: adding m
// checksum (parity) blocks to n data blocks of equal size allows
// recovery from up to m block losses, reducing the storage overhead for
// tolerating m failures from m+1 copies to (m+n)/n times the file size.
//
// The implementation is the classic systematic construction: a
// Vandermonde matrix normalized so its top n rows are the identity, data
// shards pass through unchanged, and any n surviving shards reconstruct
// the rest by inverting the corresponding submatrix.
package rs

import (
	"errors"
	"fmt"
	"io"
)

// Arithmetic over GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1 (0x11b
// is common too; we use 0x11d, the polynomial standard in storage RS).
var (
	expTable [512]byte
	logTable [256]byte
	// mulTable[a][b] = a*b over GF(2^8). The row mulTable[coef] turns
	// the coder's inner loops into a single table lookup per byte —
	// no zero tests, no log/exp index arithmetic — which is where all
	// the encode and reconstruct time goes.
	mulTable [256][256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		expTable[i] = x
		logTable[x] = byte(i)
		// multiply x by the generator 2 modulo 0x11d
		x2 := x << 1
		if x&0x80 != 0 {
			x2 ^= 0x1d
		}
		x = x2
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			mulTable[a][b] = expTable[int(logTable[a])+int(logTable[b])]
		}
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("rs: division by zero in GF(2^8)")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

func gfInv(a byte) byte { return gfDiv(1, a) }

func gfExp(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (int(logTable[a]) * n) % 255
	if l < 0 {
		l += 255
	}
	return expTable[l]
}

// Errors returned by the encoder.
var (
	ErrInvalidShards = errors.New("rs: invalid shard configuration")
	ErrTooFewShards  = errors.New("rs: too few shards to reconstruct")
	ErrShardSize     = errors.New("rs: shards must be non-empty and of equal size")
)

// Encoder encodes data into dataShards+parityShards shards and
// reconstructs missing shards from any dataShards survivors.
type Encoder struct {
	dataShards   int
	parityShards int
	// m is the (dataShards+parityShards) x dataShards systematic coding
	// matrix: the top dataShards rows are the identity.
	m [][]byte
}

// New creates an encoder with the given shard counts. dataShards +
// parityShards must be at most 255.
func New(dataShards, parityShards int) (*Encoder, error) {
	if dataShards <= 0 || parityShards <= 0 || dataShards+parityShards > 255 {
		return nil, fmt.Errorf("%w: %d data + %d parity", ErrInvalidShards, dataShards, parityShards)
	}
	total := dataShards + parityShards
	// Vandermonde matrix: v[r][c] = r^c.
	v := make([][]byte, total)
	for r := range v {
		v[r] = make([]byte, dataShards)
		for c := 0; c < dataShards; c++ {
			v[r][c] = gfExp(byte(r+1), c)
		}
	}
	// Normalize so the top dataShards x dataShards block is the identity:
	// multiply by the inverse of the top block.
	top := make([][]byte, dataShards)
	for i := range top {
		top[i] = append([]byte(nil), v[i]...)
	}
	inv, err := invert(top)
	if err != nil {
		return nil, fmt.Errorf("rs: building coding matrix: %w", err)
	}
	m := matMul(v, inv)
	return &Encoder{dataShards: dataShards, parityShards: parityShards, m: m}, nil
}

// DataShards returns the number of data shards.
func (e *Encoder) DataShards() int { return e.dataShards }

// ParityShards returns the number of parity shards.
func (e *Encoder) ParityShards() int { return e.parityShards }

// TotalShards returns dataShards+parityShards.
func (e *Encoder) TotalShards() int { return e.dataShards + e.parityShards }

// StorageOverhead returns the storage multiplier (n+m)/n the paper
// quotes for tolerating m losses.
func (e *Encoder) StorageOverhead() float64 {
	return float64(e.TotalShards()) / float64(e.dataShards)
}

// Split pads data and splits it into dataShards equal shards, leaving
// room so Encode can be called on the returned slice (parity shards are
// allocated zeroed).
func (e *Encoder) Split(data []byte) ([][]byte, error) {
	if len(data) == 0 {
		return nil, ErrShardSize
	}
	per := (len(data) + e.dataShards - 1) / e.dataShards
	shards := make([][]byte, e.TotalShards())
	for i := 0; i < e.dataShards; i++ {
		shards[i] = make([]byte, per)
		lo := i * per
		if lo < len(data) {
			copy(shards[i], data[lo:min(len(data), lo+per)])
		}
	}
	for i := e.dataShards; i < e.TotalShards(); i++ {
		shards[i] = make([]byte, per)
	}
	return shards, nil
}

// Join concatenates the data shards and truncates to size.
func (e *Encoder) Join(shards [][]byte, size int) ([]byte, error) {
	if len(shards) < e.dataShards {
		return nil, ErrTooFewShards
	}
	var out []byte
	for i := 0; i < e.dataShards; i++ {
		if shards[i] == nil {
			return nil, fmt.Errorf("%w: data shard %d missing (reconstruct first)", ErrTooFewShards, i)
		}
		out = append(out, shards[i]...)
	}
	if size > len(out) {
		return nil, fmt.Errorf("rs: join size %d exceeds shard data %d", size, len(out))
	}
	return out[:size], nil
}

// Encode computes the parity shards from the data shards in place.
func (e *Encoder) Encode(shards [][]byte) error {
	if err := e.checkShards(shards, false); err != nil {
		return err
	}
	for p := 0; p < e.parityShards; p++ {
		row := e.m[e.dataShards+p]
		out := shards[e.dataShards+p]
		for i := range out {
			out[i] = 0
		}
		for d := 0; d < e.dataShards; d++ {
			coef := row[d]
			if coef == 0 {
				continue
			}
			mul := &mulTable[coef]
			src := shards[d]
			for i := range out {
				out[i] ^= mul[src[i]]
			}
		}
	}
	return nil
}

// Verify recomputes the parity and reports whether it matches.
func (e *Encoder) Verify(shards [][]byte) (bool, error) {
	if err := e.checkShards(shards, false); err != nil {
		return false, err
	}
	per := len(shards[0])
	tmp := make([]byte, per)
	for p := 0; p < e.parityShards; p++ {
		row := e.m[e.dataShards+p]
		for i := range tmp {
			tmp[i] = 0
		}
		for d := 0; d < e.dataShards; d++ {
			coef := row[d]
			if coef == 0 {
				continue
			}
			mul := &mulTable[coef]
			src := shards[d]
			for i := range tmp {
				tmp[i] ^= mul[src[i]]
			}
		}
		for i := range tmp {
			if tmp[i] != shards[e.dataShards+p][i] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Reconstruct rebuilds missing shards (nil entries) in place. It needs
// at least dataShards present shards.
func (e *Encoder) Reconstruct(shards [][]byte) error {
	if err := e.checkShards(shards, true); err != nil {
		return err
	}
	present := 0
	per := 0
	for _, s := range shards {
		if s != nil {
			present++
			per = len(s)
		}
	}
	if present == e.TotalShards() {
		return nil
	}
	if present < e.dataShards {
		return fmt.Errorf("%w: %d of %d present, need %d", ErrTooFewShards, present, e.TotalShards(), e.dataShards)
	}

	// Pick dataShards surviving rows and invert that submatrix.
	subM := make([][]byte, 0, e.dataShards)
	subShards := make([][]byte, 0, e.dataShards)
	for i := 0; i < e.TotalShards() && len(subM) < e.dataShards; i++ {
		if shards[i] != nil {
			subM = append(subM, append([]byte(nil), e.m[i]...))
			subShards = append(subShards, shards[i])
		}
	}
	dec, err := invert(subM)
	if err != nil {
		return fmt.Errorf("rs: reconstruct: %w", err)
	}

	// Rebuild missing data shards: data = dec * survivors.
	for d := 0; d < e.dataShards; d++ {
		if shards[d] != nil {
			continue
		}
		out := make([]byte, per)
		for c := 0; c < e.dataShards; c++ {
			coef := dec[d][c]
			if coef == 0 {
				continue
			}
			mul := &mulTable[coef]
			src := subShards[c]
			for i := range out {
				out[i] ^= mul[src[i]]
			}
		}
		shards[d] = out
	}
	// Rebuild missing parity shards from the (now complete) data.
	for p := 0; p < e.parityShards; p++ {
		idx := e.dataShards + p
		if shards[idx] != nil {
			continue
		}
		out := make([]byte, per)
		row := e.m[idx]
		for d := 0; d < e.dataShards; d++ {
			coef := row[d]
			if coef == 0 {
				continue
			}
			mul := &mulTable[coef]
			src := shards[d]
			for i := range out {
				out[i] ^= mul[src[i]]
			}
		}
		shards[idx] = out
	}
	return nil
}

// ReconstructInto rebuilds ONLY shard idx from any dataShards present
// shards, writing the result into dst (which must be shard-sized).
// Unlike Reconstruct it never materializes the other missing shards:
// the target shard — data or parity — is a single matrix row applied
// to the survivors, which is what a fragment repair wants (re-create
// one lost fragment from m survivors without decoding the whole file).
// shards[idx] is ignored; it may be nil or stale.
func (e *Encoder) ReconstructInto(shards [][]byte, idx int, dst []byte) error {
	if err := e.checkShards(shards, true); err != nil {
		return err
	}
	if idx < 0 || idx >= e.TotalShards() {
		return fmt.Errorf("%w: shard index %d of %d", ErrInvalidShards, idx, e.TotalShards())
	}
	// Pick dataShards surviving rows (never the target itself) and
	// invert that submatrix.
	subM := make([][]byte, 0, e.dataShards)
	subShards := make([][]byte, 0, e.dataShards)
	per := -1
	for i := 0; i < e.TotalShards() && len(subM) < e.dataShards; i++ {
		if i == idx || shards[i] == nil {
			continue
		}
		subM = append(subM, append([]byte(nil), e.m[i]...))
		subShards = append(subShards, shards[i])
		per = len(shards[i])
	}
	if len(subM) < e.dataShards {
		return fmt.Errorf("%w: need %d survivors besides shard %d", ErrTooFewShards, e.dataShards, idx)
	}
	if len(dst) != per {
		return fmt.Errorf("%w: dst is %d bytes, shards are %d", ErrShardSize, len(dst), per)
	}
	dec, err := invert(subM)
	if err != nil {
		return fmt.Errorf("rs: reconstruct-into: %w", err)
	}
	// Coefficient row of the target shard over the survivors: for a data
	// shard it is a row of the decoder; for a parity shard, the parity's
	// coding row composed with the decoder.
	coefs := make([]byte, e.dataShards)
	if idx < e.dataShards {
		copy(coefs, dec[idx])
	} else {
		row := e.m[idx]
		for c := 0; c < e.dataShards; c++ {
			var acc byte
			for k := 0; k < e.dataShards; k++ {
				acc ^= gfMul(row[k], dec[k][c])
			}
			coefs[c] = acc
		}
	}
	for i := range dst {
		dst[i] = 0
	}
	for c, coef := range coefs {
		if coef == 0 {
			continue
		}
		mul := &mulTable[coef]
		src := subShards[c]
		for i := range dst {
			dst[i] ^= mul[src[i]]
		}
	}
	return nil
}

// StreamEncode reads src in groups of dataShards x shardSize bytes,
// encodes each group, and hands the complete shard set (dataShards
// data + parityShards parity, each shardSize long; the final group is
// zero-padded) to emit. The shard buffers are reused between groups —
// emit must copy anything it keeps. This is the insert path's coder:
// an object streams through in fragment-sized groups without the whole
// file and its parity ever being resident at once.
func (e *Encoder) StreamEncode(src io.Reader, shardSize int, emit func(group int, shards [][]byte) error) error {
	if shardSize <= 0 {
		return fmt.Errorf("%w: shard size %d", ErrShardSize, shardSize)
	}
	shards := make([][]byte, e.TotalShards())
	for i := range shards {
		shards[i] = make([]byte, shardSize)
	}
	buf := make([]byte, e.dataShards*shardSize)
	for group := 0; ; group++ {
		n, err := io.ReadFull(src, buf)
		if n == 0 {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil
			}
			return err
		}
		if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
			return err
		}
		for i := n; i < len(buf); i++ {
			buf[i] = 0
		}
		for d := 0; d < e.dataShards; d++ {
			copy(shards[d], buf[d*shardSize:(d+1)*shardSize])
		}
		if eerr := e.Encode(shards); eerr != nil {
			return eerr
		}
		if eerr := emit(group, shards); eerr != nil {
			return eerr
		}
		if n < len(buf) {
			return nil
		}
	}
}

// checkShards validates shard count and sizes. allowNil permits missing
// shards (for Reconstruct).
func (e *Encoder) checkShards(shards [][]byte, allowNil bool) error {
	if len(shards) != e.TotalShards() {
		return fmt.Errorf("%w: got %d shards, want %d", ErrInvalidShards, len(shards), e.TotalShards())
	}
	size := -1
	for i, s := range shards {
		if s == nil {
			if !allowNil {
				return fmt.Errorf("%w: shard %d is nil", ErrShardSize, i)
			}
			continue
		}
		if len(s) == 0 {
			return ErrShardSize
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return ErrShardSize
		}
	}
	if size == -1 {
		return ErrTooFewShards
	}
	return nil
}

// matMul multiplies a (r x n) by b (n x n).
func matMul(a, b [][]byte) [][]byte {
	rows := len(a)
	n := len(b)
	out := make([][]byte, rows)
	for r := 0; r < rows; r++ {
		out[r] = make([]byte, n)
		for c := 0; c < n; c++ {
			var acc byte
			for k := 0; k < n; k++ {
				acc ^= gfMul(a[r][k], b[k][c])
			}
			out[r][c] = acc
		}
	}
	return out
}

// invert inverts a square matrix over GF(2^8) by Gauss-Jordan
// elimination. The input is clobbered.
func invert(m [][]byte) ([][]byte, error) {
	n := len(m)
	inv := make([][]byte, n)
	for i := range inv {
		inv[i] = make([]byte, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if m[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, errors.New("singular matrix")
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		// Scale pivot row to 1.
		if p := m[col][col]; p != 1 {
			pi := gfInv(p)
			for c := 0; c < n; c++ {
				m[col][c] = gfMul(m[col][c], pi)
				inv[col][c] = gfMul(inv[col][c], pi)
			}
		}
		// Eliminate other rows.
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			for c := 0; c < n; c++ {
				m[r][c] ^= gfMul(f, m[col][c])
				inv[r][c] ^= gfMul(f, inv[col][c])
			}
		}
	}
	return inv, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
