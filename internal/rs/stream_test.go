package rs

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestReconstructIntoEveryIndex(t *testing.T) {
	enc, err := New(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 4*97)
	rng.Read(data)
	shards, err := enc.Split(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(shards); err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < enc.TotalShards(); idx++ {
		// Lose the target plus as many others as parity allows.
		lost := make([][]byte, len(shards))
		copy(lost, shards)
		lost[idx] = nil
		lost[(idx+2)%len(lost)] = nil
		lost[(idx+4)%len(lost)] = nil
		dst := make([]byte, len(shards[0]))
		if err := enc.ReconstructInto(lost, idx, dst); err != nil {
			t.Fatalf("ReconstructInto(%d): %v", idx, err)
		}
		if !bytes.Equal(dst, shards[idx]) {
			t.Fatalf("ReconstructInto(%d): rebuilt shard differs", idx)
		}
		// The other missing shards must remain untouched (not rebuilt).
		if lost[(idx+2)%len(lost)] != nil || lost[(idx+4)%len(lost)] != nil {
			t.Fatalf("ReconstructInto(%d): materialized non-target shards", idx)
		}
	}
}

func TestReconstructIntoTooFew(t *testing.T) {
	enc, _ := New(3, 2)
	shards := make([][]byte, 5)
	shards[0] = []byte{1, 2}
	shards[1] = []byte{3, 4}
	dst := make([]byte, 2)
	if err := enc.ReconstructInto(shards, 4, dst); err == nil {
		t.Fatal("want error with only 2 of 3 survivors")
	}
}

func TestStreamEncodeMatchesSplitEncode(t *testing.T) {
	enc, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	// 2.5 groups at shardSize 64: exercises the padded tail.
	data := make([]byte, 4*64*2+130)
	rng.Read(data)

	var groups [][][]byte
	err = enc.StreamEncode(bytes.NewReader(data), 64, func(g int, shards [][]byte) error {
		cp := make([][]byte, len(shards))
		for i, s := range shards {
			cp[i] = append([]byte(nil), s...)
		}
		groups = append(groups, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	// Every group must verify and reassemble the original bytes.
	var out []byte
	for g, shards := range groups {
		ok, err := enc.Verify(shards)
		if err != nil || !ok {
			t.Fatalf("group %d does not verify: %v", g, err)
		}
		for d := 0; d < 4; d++ {
			out = append(out, shards[d]...)
		}
	}
	if !bytes.Equal(out[:len(data)], data) {
		t.Fatal("streamed groups do not reassemble the input")
	}
	for _, b := range out[len(data):] {
		if b != 0 {
			t.Fatal("tail padding is not zeroed")
		}
	}
}

func TestMulTableMatchesGfMul(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := mulTable[a][b], gfMul(byte(a), byte(b)); got != want {
				t.Fatalf("mulTable[%d][%d] = %d, want %d", a, b, got, want)
			}
		}
	}
}
