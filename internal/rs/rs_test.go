package rs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldAxioms(t *testing.T) {
	// Multiplicative inverse and distributivity over random elements.
	f := func(a, b, c byte) bool {
		// a*(b^c) == a*b ^ a*c (distributivity: ^ is field addition)
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			return false
		}
		// commutativity
		if gfMul(a, b) != gfMul(b, a) {
			return false
		}
		// inverse
		if a != 0 && gfMul(a, gfInv(a)) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	gfDiv(1, 0)
}

func TestNewValidation(t *testing.T) {
	for _, c := range [][2]int{{0, 1}, {1, 0}, {200, 100}} {
		if _, err := New(c[0], c[1]); err == nil {
			t.Fatalf("New(%d,%d) must fail", c[0], c[1])
		}
	}
	e, err := New(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.DataShards() != 8 || e.ParityShards() != 4 || e.TotalShards() != 12 {
		t.Fatal("accessors")
	}
	if e.StorageOverhead() != 1.5 {
		t.Fatalf("overhead = %g; want 1.5", e.StorageOverhead())
	}
}

func TestEncodeVerifyRoundTrip(t *testing.T) {
	e, _ := New(6, 3)
	data := make([]byte, 10_000)
	rand.New(rand.NewSource(1)).Read(data)
	shards, err := e.Split(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Encode(shards); err != nil {
		t.Fatal(err)
	}
	ok, err := e.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("verify: %v %v", ok, err)
	}
	// Corrupt a byte: verification must fail.
	shards[2][5] ^= 0xff
	ok, err = e.Verify(shards)
	if err != nil || ok {
		t.Fatal("corruption not detected")
	}
	shards[2][5] ^= 0xff
	got, err := e.Join(shards, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("join mismatch")
	}
}

func TestReconstructAllErasurePatterns(t *testing.T) {
	e, _ := New(4, 3)
	data := make([]byte, 5_000)
	rand.New(rand.NewSource(2)).Read(data)
	orig, _ := e.Split(data)
	if err := e.Encode(orig); err != nil {
		t.Fatal(err)
	}

	// Every pattern of up to 3 erasures out of 7 shards must recover.
	for mask := 0; mask < 1<<7; mask++ {
		erased := 0
		for b := 0; b < 7; b++ {
			if mask>>b&1 == 1 {
				erased++
			}
		}
		if erased == 0 || erased > 3 {
			continue
		}
		shards := make([][]byte, 7)
		for i := range shards {
			if mask>>i&1 == 0 {
				shards[i] = append([]byte(nil), orig[i]...)
			}
		}
		if err := e.Reconstruct(shards); err != nil {
			t.Fatalf("mask %07b: %v", mask, err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				t.Fatalf("mask %07b: shard %d wrong after reconstruct", mask, i)
			}
		}
	}
}

func TestReconstructTooFewFails(t *testing.T) {
	e, _ := New(4, 2)
	data := make([]byte, 100)
	shards, _ := e.Split(data)
	if err := e.Encode(shards); err != nil {
		t.Fatal(err)
	}
	// Erase 3 of 6: only 3 < 4 data shards remain.
	shards[0], shards[1], shards[5] = nil, nil, nil
	if err := e.Reconstruct(shards); err == nil {
		t.Fatal("reconstruct with too few shards must fail")
	}
}

func TestReconstructRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 2 + rr.Intn(8)
		p := 1 + rr.Intn(5)
		e, err := New(d, p)
		if err != nil {
			return false
		}
		data := make([]byte, 1+rr.Intn(4096))
		rr.Read(data)
		shards, _ := e.Split(data)
		if err := e.Encode(shards); err != nil {
			return false
		}
		// Erase up to p random shards.
		for i := 0; i < p; i++ {
			shards[rr.Intn(d+p)] = nil
		}
		if err := e.Reconstruct(shards); err != nil {
			return false
		}
		got, err := e.Join(shards, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	for i := 0; i < 100; i++ {
		if !f(r.Int63()) {
			t.Fatalf("randomized reconstruct failed at iteration %d", i)
		}
	}
}

func TestSplitJoinEdgeCases(t *testing.T) {
	e, _ := New(3, 2)
	if _, err := e.Split(nil); err == nil {
		t.Fatal("empty split must fail")
	}
	// Size not divisible by shards: padding round trip.
	data := []byte{1, 2, 3, 4, 5, 6, 7}
	shards, err := e.Split(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Encode(shards); err != nil {
		t.Fatal(err)
	}
	got, err := e.Join(shards, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("join: %v %v", got, err)
	}
	if _, err := e.Join(shards, 10_000); err == nil {
		t.Fatal("oversize join must fail")
	}
	shards[1] = nil
	if _, err := e.Join(shards, len(data)); err == nil {
		t.Fatal("join with missing data shard must fail")
	}
}

func TestCheckShards(t *testing.T) {
	e, _ := New(2, 1)
	if err := e.Encode([][]byte{{1}, {2}}); err == nil {
		t.Fatal("wrong shard count must fail")
	}
	if err := e.Encode([][]byte{{1}, {2, 3}, {4}}); err == nil {
		t.Fatal("unequal shard sizes must fail")
	}
	if err := e.Encode([][]byte{{1}, nil, {4}}); err == nil {
		t.Fatal("nil shard must fail Encode")
	}
	if err := e.Reconstruct([][]byte{nil, nil, nil}); err == nil {
		t.Fatal("all-nil reconstruct must fail")
	}
}

func BenchmarkEncode8x4_1MB(b *testing.B) {
	e, _ := New(8, 4)
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	shards, _ := e.Split(data)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct8x4_1MB(b *testing.B) {
	e, _ := New(8, 4)
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	orig, _ := e.Split(data)
	if err := e.Encode(orig); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, len(orig))
		copy(shards, orig)
		shards[0], shards[3], shards[9] = nil, nil, nil
		if err := e.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}
