package rs

import (
	"fmt"
	"math/rand"
	"testing"
)

// Benchmarks for the coder's two hot paths: parity generation on
// insert and shard reconstruction on repair. Sizes are one PAST
// fragment group (64 KiB of data) under the two configurations the
// experiments use: EC(4,8) (replication-equivalent overhead) and
// RS(8,4) (the client-side frag default).

func benchShards(b *testing.B, data, parity, shardSize int) (*Encoder, [][]byte) {
	b.Helper()
	enc, err := New(data, parity)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	shards := make([][]byte, data+parity)
	for i := range shards {
		shards[i] = make([]byte, shardSize)
		if i < data {
			rng.Read(shards[i])
		}
	}
	return enc, shards
}

func BenchmarkEncode(b *testing.B) {
	for _, cfg := range []struct{ data, parity int }{{4, 8}, {8, 4}} {
		b.Run(fmt.Sprintf("rs(%d,%d)x16KiB", cfg.data, cfg.parity), func(b *testing.B) {
			enc, shards := benchShards(b, cfg.data, cfg.parity, 16<<10)
			b.SetBytes(int64(cfg.data * 16 << 10))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := enc.Encode(shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReconstruct(b *testing.B) {
	for _, cfg := range []struct{ data, parity int }{{4, 8}, {8, 4}} {
		b.Run(fmt.Sprintf("rs(%d,%d)x16KiB", cfg.data, cfg.parity), func(b *testing.B) {
			enc, shards := benchShards(b, cfg.data, cfg.parity, 16<<10)
			if err := enc.Encode(shards); err != nil {
				b.Fatal(err)
			}
			lost := make([][]byte, len(shards))
			b.SetBytes(int64(cfg.data * 16 << 10))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(lost, shards)
				// Lose as many shards as parity allows, starting with data.
				for j := 0; j < cfg.parity; j++ {
					lost[j%len(lost)] = nil
				}
				if err := enc.Reconstruct(lost); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
