// Package wire defines the request/response envelope and codec the TCP
// transport exchanges. Payloads are encoded with encoding/gob against
// the message-type registry each protocol package contributes
// (pastry.RegisterWire, past.RegisterWire).
package wire

import (
	"encoding/gob"
	"fmt"
	"io"

	"past/internal/id"
	"past/internal/obs"
)

// Request is one RPC from Src carrying an opaque protocol message.
type Request struct {
	Src id.Node
	Msg any
	// TC is the request's trace context (zero: untraced). The transport
	// stamps it from the caller's context; the receiving side hands it
	// to endpoints that implement transport.TracedEndpoint, which is how
	// a `pastctl trace` request starts hop collection on a remote node.
	TC obs.TraceContext
}

// Response answers a Request. A non-empty Err means the remote handler
// failed; Msg is nil in that case.
type Response struct {
	Msg any
	Err string
}

// Directory entries are exchanged by the transport's built-in gossip so
// joining nodes learn id -> address mappings and emulated coordinates.

// DirEntry announces one node's address and position.
type DirEntry struct {
	ID   id.Node
	Addr string
	X, Y float64
}

// DirQuery asks a node for its full directory.
type DirQuery struct{}

// DirReply carries a directory snapshot.
type DirReply struct {
	Entries []DirEntry
}

// RegisterWire registers the envelope-level types.
func RegisterWire() {
	gob.Register(&DirEntry{})
	gob.Register(&DirQuery{})
	gob.Register(&DirReply{})
}

// Codec frames gob-encoded requests and responses on a stream. A Codec
// is not safe for concurrent use; the transport serializes access.
type Codec struct {
	enc *gob.Encoder
	dec *gob.Decoder
}

// NewCodec wraps a connection.
func NewCodec(rw io.ReadWriter) *Codec {
	return &Codec{enc: gob.NewEncoder(rw), dec: gob.NewDecoder(rw)}
}

// WriteRequest sends a request.
func (c *Codec) WriteRequest(r *Request) error {
	if err := c.enc.Encode(r); err != nil {
		return fmt.Errorf("wire: encode request: %w", err)
	}
	return nil
}

// ReadRequest receives a request.
func (c *Codec) ReadRequest() (*Request, error) {
	var r Request
	if err := c.dec.Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// WriteResponse sends a response.
func (c *Codec) WriteResponse(r *Response) error {
	if err := c.enc.Encode(r); err != nil {
		return fmt.Errorf("wire: encode response: %w", err)
	}
	return nil
}

// ReadResponse receives a response.
func (c *Codec) ReadResponse() (*Response, error) {
	var r Response
	if err := c.dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("wire: decode response: %w", err)
	}
	return &r, nil
}
