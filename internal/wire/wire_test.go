package wire

import (
	"bytes"
	"net"
	"sync"
	"testing"

	"past/internal/id"
	"past/internal/past"
	"past/internal/pastry"
)

var registerOnce sync.Once

func register() {
	registerOnce.Do(func() {
		RegisterWire()
		past.RegisterWire()
	})
}

func TestCodecRequestResponseRoundTrip(t *testing.T) {
	register()
	var buf bytes.Buffer
	c := NewCodec(&buf)

	src := id.NodeFromUint64(42)
	req := &Request{Src: src, Msg: &pastry.Ping{}}
	if err := c.WriteRequest(req); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadRequest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != src {
		t.Fatalf("src = %v", got.Src)
	}
	if _, ok := got.Msg.(*pastry.Ping); !ok {
		t.Fatalf("msg = %T", got.Msg)
	}

	if err := c.WriteResponse(&Response{Msg: &pastry.Pong{}}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.Msg.(*pastry.Pong); !ok || resp.Err != "" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestCodecCarriesRoutedPayloads(t *testing.T) {
	register()
	var buf bytes.Buffer
	c := NewCodec(&buf)

	f := id.NewFile("x", nil, 1)
	rr := &pastry.RouteRequest{
		Key:     f.Key(),
		Payload: &past.LookupMsg{File: f},
		Hops:    2,
	}
	if err := c.WriteRequest(&Request{Src: id.NodeFromUint64(1), Msg: rr}); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadRequest()
	if err != nil {
		t.Fatal(err)
	}
	dec := got.Msg.(*pastry.RouteRequest)
	if dec.Hops != 2 || dec.Key != f.Key() {
		t.Fatalf("decoded %+v", dec)
	}
	if lm := dec.Payload.(*past.LookupMsg); lm.File != f {
		t.Fatalf("payload %+v", lm)
	}
}

func TestCodecErrorResponse(t *testing.T) {
	register()
	var buf bytes.Buffer
	c := NewCodec(&buf)
	if err := c.WriteResponse(&Response{Err: "boom"}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "boom" || resp.Msg != nil {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestCodecOverSocketPair(t *testing.T) {
	register()
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	done := make(chan error, 1)
	go func() {
		sc := NewCodec(server)
		req, err := sc.ReadRequest()
		if err != nil {
			done <- err
			return
		}
		if _, ok := req.Msg.(*DirQuery); !ok {
			done <- err
			return
		}
		done <- sc.WriteResponse(&Response{Msg: &DirReply{
			Entries: []DirEntry{{ID: id.NodeFromUint64(9), Addr: "a:1", X: 1, Y: 2}},
		}})
	}()

	cc := NewCodec(client)
	if err := cc.WriteRequest(&Request{Src: id.NodeFromUint64(5), Msg: &DirQuery{}}); err != nil {
		t.Fatal(err)
	}
	resp, err := cc.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	dr := resp.Msg.(*DirReply)
	if len(dr.Entries) != 1 || dr.Entries[0].Addr != "a:1" {
		t.Fatalf("entries = %+v", dr.Entries)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestReadFromGarbageFails(t *testing.T) {
	c := NewCodec(bytes.NewBufferString("this is not gob"))
	if _, err := c.ReadResponse(); err == nil {
		t.Fatal("garbage must not decode")
	}
}
