# PAST in Go — development targets. Everything is stdlib-only; plain
# `go build ./...` works without this Makefile.

GO ?= go

.PHONY: all build test test-race race bench experiments experiments-full examples soak-compare trace-demo fsck-demo overload-demo cache-demo cluster-demo fleet-obs-demo ec-demo cache-bench vet fmt clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full race-detector sweep. -short skips the trace-driven experiment
# runs (minutes each under the race detector); every protocol and
# concurrency path still executes.
test-race:
	$(GO) test -race -short ./...

race:
	$(GO) test -race ./internal/transport/ ./internal/netsim/ ./internal/pastry/ ./internal/past/

# One benchmark per paper table/figure plus the ablations (tiny scale).
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Regenerate every table and figure at the default 300-node scale.
experiments:
	$(GO) run ./cmd/past-bench -exp all -scale bench | tee results_bench.txt

# The paper's scale: 2250 nodes, ~1.8M files. Hours on a small machine.
experiments-full:
	$(GO) run ./cmd/past-bench -exp all -scale full | tee results_full.txt

# Paired chaos soaks over one schedule: fail-fast baseline vs the
# resilience layer, plus the -short test that asserts the layer's
# strict improvement. Finishes in seconds.
soak-compare:
	$(GO) run ./cmd/past-chaos -compare -drop 0.10 -seed 3
	$(GO) test -short -run 'TestSoakResilience' -v ./internal/experiments/

# Traced soak demo: run a small chaos soak with per-hop tracing and the
# JSONL event stream on, then validate that every emitted line parses.
# Fails if the stream is malformed. Finishes in seconds.
trace-demo:
	$(GO) run ./cmd/past-chaos -nodes 25 -files 25 -ticks 6 -resilience \
		-trace 2 -events-out /tmp/past-trace-demo.jsonl
	$(GO) run ./cmd/past-chaos -check-events /tmp/past-trace-demo.jsonl

# Storage crash demo: soak a log-structured store through kill/truncate/
# recover cycles (populating it in the process), verify it offline with
# fsck, then reopen it read-only via a final soak life. Finishes in
# seconds.
fsck-demo:
	rm -rf /tmp/past-fsck-demo
	$(GO) run ./cmd/past-chaos -crash -crash-lives 4 -crash-ops 300 \
		-crash-dir /tmp/past-fsck-demo -keep
	$(GO) run ./cmd/past-state fsck /tmp/past-fsck-demo

# Overload-protection demo: a deterministic virtual-time offered-rate
# sweep that asserts shedding strictly beats the unbounded queue at 2x
# capacity (higher goodput, lower p99), then reruns one sim and
# requires a bit-identical fingerprint. Finishes in seconds.
overload-demo:
	$(GO) run ./cmd/past-load -sim -check -seed 1 -nodes 10 -node-rate 20 -requests 1500
	$(GO) run ./cmd/past-load -sim -verify -seed 1 -nodes 10 -node-rate 20 -rate 400 -requests 1500

# Live-fleet demo: boot 5 REAL pastd processes on loopback (the
# past-cluster binary re-executes itself as the daemons), SIGKILL and
# restart 2 of them on the seeded schedule, audit the live replica
# invariants with the emulator's checker, verify zero acked-write loss
# byte for byte, and fsck every store after every process life. The
# per-node data dirs and captured process logs land under
# /tmp/past-cluster-demo for post-mortem on failure. Finishes in
# seconds — well under a minute.
cluster-demo:
	rm -rf /tmp/past-cluster-demo /tmp/past-cluster-demo.jsonl
	$(GO) run ./cmd/past-cluster -nodes 5 -seed 1 -scenario kill \
		-rounds 2 -kill-rate 0.2 -check -v -data /tmp/past-cluster-demo \
		-events-out /tmp/past-cluster-demo.jsonl
	$(GO) run ./cmd/past-chaos -check-events /tmp/past-cluster-demo.jsonl

# Erasure-coding demo: boot a small REAL fleet in EC mode (rs(3,2):
# each object becomes 5 third-cost fragments on distinct nodes, any 3
# reconstruct), SIGKILL fragment holders on the seeded schedule, and
# audit that every acked write survives byte for byte with lost
# fragments re-created by the lazy bandwidth-capped repair queue — the
# fragment-loss invariant is checked every round. Then the
# deterministic repair-rate-vs-durability sweep: coded storage vs k=3
# replication at equal 3.0x overhead, with and without repair.
# Finishes in seconds.
ec-demo:
	rm -rf /tmp/past-ec-demo
	$(GO) run ./cmd/past-cluster -nodes 6 -seed 1 -scenario kill \
		-rounds 2 -kill-rate 0.2 -ec 3,2 -ec-repair-budget 512KB \
		-check -v -data /tmp/past-ec-demo
	$(GO) run ./cmd/past-chaos -ec-durability -verify

# Fleet observability demo: boot a real 5-process cluster, drive client
# traffic through it, then assert the aggregation plane end to end —
# the combined /metrics endpoint serves per-node series plus the
# node="fleet" aggregate, and a client-initiated trace comes back
# stitched across at least two processes with per-hop RPC latencies.
# Finishes in seconds.
fleet-obs-demo:
	$(GO) test -run TestFleetObsLive -count=1 -v ./internal/fleetobs/

# Cache-engine demo: a deterministic virtual-time sweep of the three
# cache configurations (legacy single structure, sharded engine with a
# capped RAM tier, same RAM plus a flash tier) printing the per-tier
# hit-rate table, and asserting the flash tier beats capped RAM alone.
# Finishes in seconds.
cache-demo:
	$(GO) run ./cmd/past-load -sim -cache-check -seed 1 -requests 1500 -files 192 -cache-ram 32768

# Cache-engine microbenchmarks: parallel Get/Insert throughput of the
# sharded engine against the single-mutex cache it replaces. The gap
# grows with core count; a single-core machine shows parity.
cache-bench:
	$(GO) test -run '^$$' -bench 'GetParallel|InsertParallel' -cpu 8 ./internal/cachengine/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/archival
	$(GO) run ./examples/cdn
	$(GO) run ./examples/churn
	$(GO) run ./examples/squidreplay

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
