// Command past-cluster boots a fleet of REAL pastd processes on
// loopback and drives a seeded, deterministic process-level fault
// schedule against it — SIGKILL with logstore crash recovery, SIGTERM
// graceful leaves, restart-with-rejoin, rolling churn — while inserting
// client traffic and (with -check) continuously auditing the same
// replica invariants the emulator's chaos checker enforces, plus
// zero-loss verification of every acknowledged write and an offline
// fsck of each store after every process life.
//
// The daemons are this binary re-executing itself (no separate build
// step); point -pastd at a pastd binary to supervise that instead.
//
// Usage:
//
//	past-cluster                                   # 10 nodes, seed 1, mixed faults, churn only
//	past-cluster -nodes 10 -seed 1 -kill-rate 0.1 -check   # the acceptance run: audit everything
//	past-cluster -scenario rolling -rounds 10 -check       # staggered rolling restart
//	past-cluster -scenario kill -kill-rate 0.2 -check      # crash-recovery heavy
//	past-cluster -ec 3,2 -scenario kill -check             # erasure-coded fleet, lazy fragment repair
//	past-cluster -nodes 5 -rounds 2 -check -events-out run.jsonl
//	past-cluster -duration 45s -check              # stop scheduling new rounds after 45s
//	past-cluster -data /tmp/fleet -keep -v         # keep per-node logs and stores
//
// The pass/fail summary line is seed-stable: two passing runs with the
// same flags print byte-identical summaries (wall-clock details print
// separately). Exit status is 0 only if the full plan was delivered and
// every check held.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"past/internal/cluster"
	"past/internal/daemon"
	"past/internal/experiments"
	"past/internal/obs"
)

func main() {
	cluster.MaybeRunDaemon(daemon.Run)
	os.Exit(run())
}

func run() int {
	var (
		nodes    = flag.Int("nodes", 10, "fleet size (real processes)")
		k        = flag.Int("k", 3, "replication factor")
		seed     = flag.Int64("seed", 1, "seed: node identities, fault schedule, traffic")
		scenario = flag.String("scenario", "mixed", "fault mix: mixed, kill, graceful, or rolling")
		rounds   = flag.Int("rounds", 6, "fault rounds")
		killRate = flag.Float64("kill-rate", 0.1, "fraction of the fleet disturbed per round (min one node)")
		duration = flag.Duration("duration", 0, "wall-clock budget; rounds not started by then are skipped (0: run the full plan)")
		check    = flag.Bool("check", false, "audit live replica invariants and verify every acked write after each round")
		ecMode   = flag.String("ec", "", "erasure-coded storage mode \"m,n\" (e.g. 3,2); empty: k-way replication")
		ecBudget = flag.String("ec-repair-budget", "", "per-daemon repair bandwidth cap per maintenance pass (e.g. 256KB); empty: uncapped")
		files    = flag.Int("files-per-round", 6, "inserts per round")
		events   = flag.String("events-out", "", "stream JSONL events (faults, violations, ticks, summary) to this file")
		pastd    = flag.String("pastd", "", "supervise this pastd binary instead of self-executing")
		dataDir  = flag.String("data", "", "base directory for node stores and logs (default: temp, removed on success)")
		keep     = flag.Bool("keep", false, "retain the base directory even on success")
		verbose  = flag.Bool("v", false, "narrate orchestration to stderr")
	)
	flag.Parse()

	cfg := experiments.LiveChaosConfig{
		Nodes:          *nodes,
		K:              *k,
		Seed:           *seed,
		Scenario:       *scenario,
		Rounds:         *rounds,
		KillRate:       *killRate,
		FilesPerRound:  *files,
		Duration:       *duration,
		Check:          *check,
		EC:             *ecMode,
		ECRepairBudget: *ecBudget,
		Dir:            *dataDir,
		Keep:           *keep,
	}
	if *pastd != "" {
		cfg.Command = cluster.Command{Path: *pastd}
	}
	if *verbose {
		cfg.Out = os.Stderr
	}
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintf(os.Stderr, "past-cluster: %v\n", err)
			return 1
		}
		log := obs.NewEventLog(f)
		cfg.Events = log
		defer func() {
			if err := log.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "past-cluster: events: %v\n", err)
			}
			f.Close()
		}()
	}

	res, err := experiments.RunLiveChaos(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "past-cluster: %v\n", err)
		return 1
	}
	io.WriteString(os.Stdout, experiments.RenderLiveChaos(res))
	if !res.Scenario.Passed() {
		return 1
	}
	return 0
}
