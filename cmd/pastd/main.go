// Command pastd runs one PAST storage node over TCP. The daemon logic
// itself lives in internal/daemon so other executables (the
// past-cluster orchestrator, the cluster integration tests) can host
// the identical node as a real subprocess; see that package for the
// full flag reference.
//
//	pastd -addr 127.0.0.1:7001 -capacity 64MB
//	pastd -addr 127.0.0.1:7002 -capacity 64MB -join 127.0.0.1:7001
package main

import (
	"os"

	"past/internal/daemon"
)

func main() {
	os.Exit(daemon.Run(os.Args[1:]))
}
