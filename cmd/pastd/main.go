// Command pastd runs one PAST storage node over TCP.
//
// Start the first node of a network:
//
//	pastd -addr 127.0.0.1:7001 -capacity 64MB
//
// Join additional nodes to it:
//
//	pastd -addr 127.0.0.1:7002 -capacity 64MB -join 127.0.0.1:7001
//
// The node then accepts overlay traffic from peers and client requests
// from pastctl. The proximity metric is an emulated 2-D coordinate
// (-x/-y); a deployment would substitute network measurements.
//
// With -debug-addr the node additionally serves a plaintext debug
// endpoint: Prometheus-format metrics at /metrics and the standard
// net/http/pprof profiling handlers under /debug/pprof/.
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	mrand "math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"past/internal/admit"
	"past/internal/cachengine"
	"past/internal/id"
	"past/internal/logstore"
	"past/internal/obs"
	"past/internal/past"
	"past/internal/store"
	"past/internal/topology"
	"past/internal/transport"
	"past/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7001", "listen address (host:port; must be reachable by peers)")
		capacity  = flag.String("capacity", "64MB", "advertised storage capacity (e.g. 512KB, 64MB, 2GB)")
		dataDir   = flag.String("data", "", "data directory for persistent storage (empty: in-memory)")
		join      = flag.String("join", "", "address of an existing node to join via (empty: bootstrap a new network)")
		x         = flag.Float64("x", math.NaN(), "proximity-plane x coordinate (default random)")
		y         = flag.Float64("y", math.NaN(), "proximity-plane y coordinate (default random)")
		k         = flag.Int("k", 5, "replication factor")
		leafSet   = flag.Int("l", 32, "Pastry leaf set size")
		keepalive = flag.Duration("keepalive", 5*time.Second, "leaf-set keep-alive period")
		seed      = flag.Int64("seed", 0, "node id seed (0: cryptographically random)")

		storeKind  = flag.String("store", "", "storage backend: mem, disk, or log (empty: disk when -data is set, else mem)")
		syncPolicy = flag.String("sync", "always", "log store durability: always (group commit), interval, or never")
		syncEvery  = flag.Duration("sync-every", 100*time.Millisecond, "log store: fsync period for -sync=interval")
		segBytes   = flag.String("segment-bytes", "64MB", "log store: target segment size before rotation")
		ckptBytes  = flag.String("checkpoint-bytes", "4MB", "log store: WAL bytes between automatic checkpoints (0: disable)")
		compactR   = flag.Float64("compact-ratio", 0.5, "log store: compact a sealed segment when its live fraction falls below this (negative: disable)")
		compactEv  = flag.Duration("compact-every", time.Minute, "log store: background compaction scan period (0: disable)")

		retries    = flag.Int("retries", 0, "resilience layer: attempts per client operation, with backoff (0: single attempt, no retry layer)")
		hedge      = flag.Duration("hedge", 0, "hedged lookups: delay before a second attempt races the first through a different first hop (0: off; needs -retries)")
		hopTimeout = flag.Duration("hop-timeout", 2*time.Second, "per-hop routing RPC timeout before trying an alternate (0: unbounded)")
		partial    = flag.Bool("partial-insert", false, "accept inserts that stored at least one but fewer than k replicas; maintenance repairs the shortfall")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics (Prometheus text) and /debug/pprof/ on this address (empty: off)")

		admitRate   = flag.Float64("admit-rate", 0, "admission control: sustained request rate in req/s; excess load is shed with an overload error (0: off)")
		admitBurst  = flag.Int("admit-burst", 8, "admission control: token-bucket burst")
		admitDepth  = flag.Int("admit-depth", 16, "admission control: bounded queue depth before shedding")
		admitPolicy = flag.String("admit-policy", "droptail", "admission control: shed policy — droptail, dropfront, or lifo")

		cacheShards = flag.Int("cache-shards", 8, "cache engine: RAM-tier shard count (rounded up to a power of two; 1 = legacy single structure)")
		cacheRAM    = flag.String("cache-ram", "0", "cache engine: RAM-tier cap (e.g. 16MB); 0 lets the cache use all free store space, as the paper does")
		cacheDoor   = flag.Bool("cache-doorkeeper", false, "cache engine: admit a file only on its second offer within a window (one-hit-wonder filter)")
		cacheNeg    = flag.Int("cache-negative", 0, "cache engine: negative-cache entries — repeated lookups for absent files answer locally (0: off)")
		cacheFlash  = flag.String("cache-flash", "0", "cache engine: flash-tier capacity (e.g. 256MB); spills RAM evictions into segments under <data>/flashcache (0: off; needs -data)")
		cacheFlSeg  = flag.String("cache-flash-segment", "4MB", "cache engine: flash segment rotation target")
	)
	flag.Parse()

	capBytes, err := parseSize(*capacity)
	if err != nil {
		log.Fatalf("pastd: %v", err)
	}

	var nid id.Node
	if *seed != 0 {
		r := mrand.New(mrand.NewSource(*seed))
		r.Read(nid[:])
	} else if _, err := rand.Read(nid[:]); err != nil {
		log.Fatalf("pastd: node id: %v", err)
	}

	pos := topology.Point{X: *x, Y: *y}
	if math.IsNaN(pos.X) || math.IsNaN(pos.Y) {
		r := mrand.New(mrand.NewSource(time.Now().UnixNano()))
		pos = topology.DefaultPlane.RandomPoint(r)
	}

	wire.RegisterWire()
	past.RegisterWire()

	tr, err := transport.New(nid, *addr, pos)
	if err != nil {
		log.Fatalf("pastd: %v", err)
	}
	cfg := past.DefaultConfig()
	cfg.K = *k
	cfg.Pastry.L = *leafSet
	cfg.Pastry.HopTimeout = *hopTimeout
	cfg.PartialInsert = *partial
	if *retries > 0 {
		cfg.Retry = &past.RetryPolicy{
			MaxAttempts: *retries,
			BaseDelay:   50 * time.Millisecond,
			Timeout:     5 * time.Second,
			JitterSeed:  time.Now().UnixNano(),
			Hedge:       *hedge > 0,
			HedgeDelay:  *hedge,
		}
	}
	if *admitRate > 0 {
		pol, err := admit.ParsePolicy(*admitPolicy)
		if err != nil {
			log.Fatalf("pastd: %v", err)
		}
		cfg.Admit = &admit.Config{
			Rate:   *admitRate,
			Burst:  *admitBurst,
			Depth:  *admitDepth,
			Policy: pol,
		}
	}
	cacheRAMBytes, err := parseSize(*cacheRAM)
	if err != nil {
		log.Fatalf("pastd: -cache-ram: %v", err)
	}
	cacheFlashBytes, err := parseSize(*cacheFlash)
	if err != nil {
		log.Fatalf("pastd: -cache-flash: %v", err)
	}
	cfg.CacheEngine = &cachengine.Config{
		Shards:          *cacheShards,
		RAMBytes:        cacheRAMBytes,
		Doorkeeper:      *cacheDoor,
		NegativeEntries: *cacheNeg,
	}
	if cacheFlashBytes > 0 {
		if *dataDir == "" {
			log.Fatalf("pastd: -cache-flash requires -data")
		}
		flashSeg, err := parseSize(*cacheFlSeg)
		if err != nil {
			log.Fatalf("pastd: -cache-flash-segment: %v", err)
		}
		cfg.CacheEngine.Flash = &cachengine.FlashConfig{
			Dir:          filepath.Join(*dataDir, "flashcache"),
			Capacity:     cacheFlashBytes,
			SegmentBytes: flashSeg,
		}
	}

	kind := *storeKind
	if kind == "" {
		if *dataDir != "" {
			kind = "disk"
		} else {
			kind = "mem"
		}
	}
	var backend store.Backend
	switch kind {
	case "mem":
		backend = store.New(capBytes)
	case "disk":
		if *dataDir == "" {
			log.Fatalf("pastd: -store=disk requires -data")
		}
		backend, err = store.OpenDisk(*dataDir, capBytes)
		if err != nil {
			log.Fatalf("pastd: %v", err)
		}
		log.Printf("pastd: persistent storage at %s (%d replicas on disk)", *dataDir, backend.Len())
	case "log":
		if *dataDir == "" {
			log.Fatalf("pastd: -store=log requires -data")
		}
		policy, err := logstore.ParseSyncPolicy(*syncPolicy)
		if err != nil {
			log.Fatalf("pastd: %v", err)
		}
		segTarget, err := parseSize(*segBytes)
		if err != nil {
			log.Fatalf("pastd: -segment-bytes: %v", err)
		}
		ckpt, err := parseSize(*ckptBytes)
		if err != nil {
			log.Fatalf("pastd: -checkpoint-bytes: %v", err)
		}
		if ckpt == 0 {
			ckpt = -1
		}
		ls, err := logstore.Open(*dataDir, logstore.Options{
			Capacity:        capBytes,
			Sync:            policy,
			SyncEvery:       *syncEvery,
			SegmentTarget:   segTarget,
			CheckpointBytes: ckpt,
			CompactRatio:    *compactR,
			CompactEvery:    *compactEv,
		})
		if err != nil {
			log.Fatalf("pastd: %v", err)
		}
		st := ls.Stats()
		log.Printf("pastd: log-structured storage at %s (%d replicas, %d WAL records replayed in %s, %d torn tails truncated, sync=%s)",
			*dataDir, ls.Len(), st.RecoveredRecords.Load(),
			time.Duration(st.RecoveryNanos.Load()), st.TornTruncations.Load(), policy)
		backend = ls
	default:
		log.Fatalf("pastd: unknown -store %q (want mem, disk, or log)", kind)
	}
	node, err := past.NewWithStoreEngine(nid, tr, cfg, backend, int64(nid[0])<<8|int64(nid[1]))
	if err != nil {
		log.Fatalf("pastd: %v", err)
	}
	ec := node.Cache().Config()
	if ec.Flash != nil {
		log.Printf("pastd: cache engine: %d shards, flash tier %d bytes at %s", ec.Shards, ec.Flash.Capacity, ec.Flash.Dir)
	} else {
		log.Printf("pastd: cache engine: %d shards", ec.Shards)
	}
	tr.Serve(node)

	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("pastd: debug listener: %v", err)
		}
		go func() {
			if err := http.Serve(ln, newDebugMux(node)); err != nil {
				log.Printf("pastd: debug server: %v", err)
			}
		}()
		log.Printf("pastd: debug endpoint on http://%s/ (metrics, pprof)", ln.Addr())
	}

	if *join == "" {
		node.Overlay().Bootstrap()
		log.Printf("pastd: bootstrapped network; node %s listening on %s (capacity %d bytes)",
			nid.Short(), tr.Addr(), capBytes)
	} else {
		bootID, err := tr.Bootstrap(*join)
		if err != nil {
			log.Fatalf("pastd: %v", err)
		}
		if err := node.Overlay().Join(bootID); err != nil {
			log.Fatalf("pastd: join: %v", err)
		}
		log.Printf("pastd: node %s joined via %s; listening on %s", nid.Short(), *join, tr.Addr())
	}

	ticker := time.NewTicker(*keepalive)
	defer ticker.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-ticker.C:
			if dead := node.Overlay().CheckLeafSet(); len(dead) > 0 {
				for _, d := range dead {
					log.Printf("pastd: leaf-set member %s presumed failed", d.Short())
				}
			}
		case <-sig:
			log.Printf("pastd: leaving gracefully")
			lr := node.Leave()
			log.Printf("pastd: offloaded %d replicas (%d failed, %d owners notified)",
				lr.Offloaded, lr.Failed, lr.OwnersNotified)
			if err := node.Cache().Close(); err != nil {
				log.Printf("pastd: cache close: %v", err)
			}
			if c, ok := backend.(io.Closer); ok {
				if err := c.Close(); err != nil {
					log.Printf("pastd: store close: %v", err)
				}
			}
			if err := tr.Close(); err != nil {
				log.Printf("pastd: close: %v", err)
			}
			return
		}
	}
}

// newDebugMux builds the debug endpoint: live node metrics in the
// Prometheus text format at /metrics, the standard pprof handlers under
// /debug/pprof/, and an index at /.
func newDebugMux(node *past.Node) *http.ServeMux {
	mux := http.NewServeMux()
	labels := map[string]string{"node": node.ID().Short()}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.WriteProm(w, node.StatsSnapshot(), labels); err != nil {
			log.Printf("pastd: /metrics: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "pastd %s\n/metrics\n/debug/pprof/\n", node.ID().Short())
	})
	return mux
}

// parseSize parses sizes like "512", "64KB", "2MB", "1GB".
func parseSize(s string) (int64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(u, "GB"):
		mult, u = 1<<30, strings.TrimSuffix(u, "GB")
	case strings.HasSuffix(u, "MB"):
		mult, u = 1<<20, strings.TrimSuffix(u, "MB")
	case strings.HasSuffix(u, "KB"):
		mult, u = 1<<10, strings.TrimSuffix(u, "KB")
	case strings.HasSuffix(u, "B"):
		u = strings.TrimSuffix(u, "B")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(u), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return n * mult, nil
}
