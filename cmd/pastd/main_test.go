package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"512", 512, true},
		{"512B", 512, true},
		{"4KB", 4 << 10, true},
		{"64MB", 64 << 20, true},
		{"2GB", 2 << 30, true},
		{" 8 MB ", 8 << 20, true},
		{"1gb", 1 << 30, true},
		{"", 0, false},
		{"abc", 0, false},
		{"-5MB", 0, false},
		{"12TB", 0, false}, // unsupported suffix -> parse failure
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Fatalf("parseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Fatalf("parseSize(%q) succeeded; want error", c.in)
		}
	}
}
