// Command past-top is the live fleet dashboard: it polls every listed
// pastd's observability registry (ClientObsReport RPC, /metrics HTTP
// fallback) through the fleetobs aggregation plane and renders
// fleet-level rates plus a per-node table in place, top-style.
//
//	past-top -nodes 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//
// With -serve the same scraper additionally serves the aggregator's
// combined /metrics endpoint (per-node series plus a node="fleet"
// aggregate), so one past-top doubles as the fleet's Prometheus target:
//
//	past-top -nodes ... -serve 127.0.0.1:9090
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"past/internal/fleetobs"
	"past/internal/id"
	"past/internal/obs"
	"past/internal/past"
	"past/internal/topology"
	"past/internal/transport"
	"past/internal/wire"
)

func main() {
	var (
		nodes    = flag.String("nodes", "", "comma-separated pastd client addresses (host:port,...)")
		debug    = flag.String("debug", "", "comma-separated debug addresses, parallel to -nodes (optional; enables the /metrics scrape fallback)")
		interval = flag.Duration("interval", 2*time.Second, "poll period")
		frames   = flag.Int("frames", 0, "number of frames to render before exiting (0: run until interrupted)")
		plain    = flag.Bool("plain", false, "append frames instead of redrawing in place (for logs and pipes)")
		serve    = flag.String("serve", "", "also serve the aggregator HTTP plane (/metrics, /nodes, /healthz) on this address")
	)
	flag.Parse()
	if *nodes == "" {
		fmt.Fprintln(os.Stderr, "usage: past-top -nodes host:port[,host:port...] [-debug host:port,...] [-interval 2s] [-frames N] [-plain] [-serve addr]")
		os.Exit(2)
	}

	wire.RegisterWire()
	past.RegisterWire()
	var cid id.Node
	if _, err := rand.Read(cid[:]); err != nil {
		log.Fatalf("past-top: %v", err)
	}
	tr, err := transport.New(cid, "127.0.0.1:0", topology.Point{})
	if err != nil {
		log.Fatalf("past-top: %v", err)
	}
	defer tr.Close()

	targets, err := parseTargets(*nodes, *debug)
	if err != nil {
		log.Fatalf("past-top: %v", err)
	}
	scraper := fleetobs.NewScraper(tr, targets)

	if *serve != "" {
		go func() {
			if err := http.ListenAndServe(*serve, fleetobs.NewHandler(scraper)); err != nil {
				log.Fatalf("past-top: serve: %v", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "past-top: aggregator on http://%s/metrics\n", *serve)
	}

	var prev *fleetobs.Sample
	var prevWhen time.Time
	for frame := 0; *frames == 0 || frame < *frames; frame++ {
		if frame > 0 {
			time.Sleep(*interval)
		}
		sample := scraper.Poll()
		out := render(sample, prev, time.Since(prevWhen))
		if !*plain {
			fmt.Print("\x1b[H\x1b[2J")
		}
		fmt.Print(out)
		prev, prevWhen = sample, time.Now()
	}
}

// parseTargets pairs the node addresses with their optional debug
// addresses into the scraper's target set.
func parseTargets(nodes, debug string) ([]fleetobs.Target, error) {
	addrs := strings.Split(nodes, ",")
	var dbg []string
	if debug != "" {
		dbg = strings.Split(debug, ",")
		if len(dbg) != len(addrs) {
			return nil, fmt.Errorf("-debug lists %d addresses for %d nodes", len(dbg), len(addrs))
		}
	}
	targets := make([]fleetobs.Target, len(addrs))
	for i, a := range addrs {
		targets[i] = fleetobs.Target{Name: fmt.Sprintf("node%02d", i), Addr: strings.TrimSpace(a)}
		if dbg != nil {
			targets[i].DebugAddr = strings.TrimSpace(dbg[i])
		}
	}
	return targets, nil
}

// render draws one frame: fleet totals and rates, then the node table
// with per-node windowed p99 and outlier marking.
func render(s, prev *fleetobs.Sample, elapsed time.Duration) string {
	var b strings.Builder
	merged := s.Merged()
	fmt.Fprintf(&b, "past-top  poll %d  %d/%d nodes live  %s\n",
		s.Seq, s.Live, len(s.Nodes), s.When.Format("15:04:05"))

	rate := func(name string) string {
		if prev == nil || elapsed <= 0 {
			return "-"
		}
		d := s.Totals.Counters[name] - prev.Totals.Counters[name]
		return fmt.Sprintf("%.1f/s", float64(d)/elapsed.Seconds())
	}
	fmt.Fprintf(&b, "fleet: lookups %d (%s)  inserts %d (%s)  reroutes %d  sheds %d  rpc-errors %d\n",
		merged.Get(obs.CtrLookups), rate(obs.CtrLookups),
		merged.Get(obs.CtrInserts), rate(obs.CtrInserts),
		merged.Get(obs.CtrReroutes), merged.Get(obs.CtrOverloadHops), merged.Get(obs.CtrRPCErrors))
	hits := merged.Get(obs.CtrCacheRAMHits)
	fhits := merged.Get(obs.CtrCacheFlashHits)
	neg := merged.Get(obs.CtrCacheNegHits)
	fmt.Fprintf(&b, "cache: ram-hits %d  flash-hits %d  negative-hits %d  misses %d  store %dB in %d replicas\n",
		hits, fhits, neg, merged.Get(obs.CtrCacheMisses),
		merged.Get(obs.CtrStoreBytes), merged.Get(obs.CtrStoreReplicas))
	if n := merged.TotalRPCs(); n > 0 {
		fmt.Fprintf(&b, "rpc:   %d calls  p50=%v p99=%v (cumulative)\n",
			n, merged.RPCQuantile(50).Round(time.Microsecond), merged.RPCQuantile(99).Round(time.Microsecond))
	}

	// Outlier mark: a live node whose windowed p99 is at least 4x the
	// median of the live nodes' windowed p99s this frame.
	p99s := make([]time.Duration, 0, len(s.Nodes))
	for i := range s.Nodes {
		if s.Nodes[i].Live() {
			p99s = append(p99s, s.Nodes[i].Window.RPCQuantile(99))
		}
	}
	sort.Slice(p99s, func(i, j int) bool { return p99s[i] < p99s[j] })
	var median time.Duration
	if len(p99s) > 0 {
		median = p99s[len(p99s)/2]
	}

	fmt.Fprintf(&b, "%-8s %-10s %-5s %10s %9s %9s %10s %9s\n",
		"node", "id", "src", "lookups", "inserts", "store", "win-p99", "flags")
	for i := range s.Nodes {
		ns := &s.Nodes[i]
		if !ns.Live() {
			fmt.Fprintf(&b, "%-8s %-10s DOWN  %s\n", ns.Target.Name, "-", ns.Err)
			continue
		}
		p99 := ns.Window.RPCQuantile(99)
		var flags []string
		if ns.Restarted {
			flags = append(flags, "RESTARTED")
		}
		if median > 0 && p99 >= 4*median {
			flags = append(flags, "SLOW")
		}
		fmt.Fprintf(&b, "%-8s %-10s %-5s %10d %9d %8dB %10v %9s\n",
			ns.Target.Name, ns.Node.Short(), ns.Source,
			ns.Snap.Get(obs.CtrLookups), ns.Snap.Get(obs.CtrInserts),
			ns.Snap.Get(obs.CtrStoreBytes), p99.Round(time.Microsecond), strings.Join(flags, ","))
	}
	return b.String()
}
