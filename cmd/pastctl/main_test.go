package main

import (
	"io"
	"math/rand"
	"os"
	"strings"
	"testing"

	"past/internal/id"
	"past/internal/past"
	"past/internal/pastry"
	"past/internal/topology"
	"past/internal/transport"
	"past/internal/wire"
)

// startTestNode runs one bootstrapped PAST node over loopback TCP.
func startTestNode(t *testing.T) (*transport.TCP, *past.Node) {
	t.Helper()
	wire.RegisterWire()
	past.RegisterWire()
	rng := rand.New(rand.NewSource(1))
	var nid id.Node
	rng.Read(nid[:])
	tr, err := transport.New(nid, "127.0.0.1:0", topology.Point{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := past.DefaultConfig()
	cfg.Pastry = pastry.Config{B: 4, L: 8}
	cfg.K = 1
	n := past.New(nid, tr, cfg, 1<<20, 1)
	tr.Serve(n)
	n.Overlay().Bootstrap()
	t.Cleanup(func() { tr.Close() })
	return tr, n
}

func newClientTransport(t *testing.T) *transport.TCP {
	t.Helper()
	var cid id.Node
	rand.New(rand.NewSource(2)).Read(cid[:])
	ct, err := transport.New(cid, "127.0.0.1:0", topology.Point{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ct.Close() })
	return ct
}

func TestRunCommandInsertLookupReclaim(t *testing.T) {
	server, _ := startTestNode(t)
	ct := newClientTransport(t)

	// insert reads stdin: substitute a pipe.
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStdin := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = oldStdin }()
	go func() {
		w.WriteString("pastctl content")
		w.Close()
	}()

	// Capture stdout for the fileId.
	ro, wo, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStdout := os.Stdout
	os.Stdout = wo
	insertErr := runCommand(ct, server.Addr(), 0, []string{"insert", "test.txt"})
	wo.Close()
	os.Stdout = oldStdout
	if insertErr != nil {
		t.Fatal(insertErr)
	}
	out := make([]byte, 256)
	n, _ := ro.Read(out)
	fidHex := strings.TrimSpace(string(out[:n]))
	if _, err := id.ParseFile(fidHex); err != nil {
		t.Fatalf("insert did not print a fileId: %q", fidHex)
	}

	if err := runCommand(ct, server.Addr(), 0, []string{"exists", fidHex}); err != nil {
		t.Fatal(err)
	}
	if err := runCommand(ct, server.Addr(), 0, []string{"reclaim", fidHex}); err != nil {
		t.Fatal(err)
	}
	if err := runCommand(ct, server.Addr(), 0, []string{"exists", fidHex}); err == nil {
		t.Fatal("exists after reclaim must fail")
	}
}

func TestRunCommandErrors(t *testing.T) {
	ct := newClientTransport(t)
	for _, args := range [][]string{
		{"bogus"},
		{"insert"},
		{"lookup"},
		{"lookup", "nothex"},
		{"reclaim"},
		{"reclaim", "zz"},
	} {
		if err := runCommand(ct, "127.0.0.1:1", 0, args); err == nil {
			t.Fatalf("args %v must fail", args)
		}
	}
}

func TestRunCommandStatus(t *testing.T) {
	server, node := startTestNode(t)
	if _, err := node.Insert(past.InsertSpec{Name: "s", Content: []byte("abc")}); err != nil {
		t.Fatal(err)
	}
	ct := newClientTransport(t)
	if err := runCommand(ct, server.Addr(), 0, []string{"status"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCommandStats(t *testing.T) {
	server, node := startTestNode(t)
	if _, err := node.Insert(past.InsertSpec{Name: "s", Content: []byte("abc")}); err != nil {
		t.Fatal(err)
	}
	ct := newClientTransport(t)

	ro, wo, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStdout := os.Stdout
	os.Stdout = wo
	statsErr := runCommand(ct, server.Addr(), 0, []string{"stats"})
	wo.Close()
	os.Stdout = oldStdout
	if statsErr != nil {
		t.Fatal(statsErr)
	}
	out, err := io.ReadAll(ro)
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{"inserts_total", "store_capacity_bytes", "msgs_in_total"} {
		if !strings.Contains(s, want) {
			t.Fatalf("stats output missing %q:\n%s", want, s)
		}
	}
}
