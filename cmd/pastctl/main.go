// Command pastctl is the PAST client: it drives a running pastd node
// through the client RPCs.
//
//	pastctl -node 127.0.0.1:7001 insert report.pdf < report.pdf
//	pastctl -node 127.0.0.1:7001 lookup <fileId-hex> > report.pdf
//	pastctl -node 127.0.0.1:7001 reclaim <fileId-hex>
//	pastctl -node 127.0.0.1:7001 exists <fileId-hex>
//	pastctl -node 127.0.0.1:7001 trace <fileId-hex>
//	pastctl -node 127.0.0.1:7001 status
//	pastctl -node 127.0.0.1:7001 stats
package main

import (
	"context"
	"crypto/rand"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"past/internal/id"
	"past/internal/obs"
	"past/internal/past"
	"past/internal/topology"
	"past/internal/transport"
	"past/internal/wire"
)

func main() {
	var (
		node = flag.String("node", "127.0.0.1:7001", "address of the PAST node acting as access point")
		k    = flag.Int("k", 0, "replication factor for inserts (0: node default)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: pastctl [-node addr] insert <name> | lookup <fileId> | reclaim <fileId> | exists <fileId> | trace <fileId> | status | stats")
		os.Exit(2)
	}

	wire.RegisterWire()
	past.RegisterWire()

	var cid id.Node
	if _, err := rand.Read(cid[:]); err != nil {
		log.Fatalf("pastctl: %v", err)
	}
	tr, err := transport.New(cid, "127.0.0.1:0", topology.Point{})
	if err != nil {
		log.Fatalf("pastctl: %v", err)
	}
	defer tr.Close()

	if err := runCommand(tr, *node, *k, flag.Args()); err != nil {
		log.Fatalf("pastctl: %v", err)
	}
}

func runCommand(tr *transport.TCP, node string, k int, args []string) error {
	switch args[0] {
	case "insert":
		if len(args) != 2 {
			return fmt.Errorf("insert needs a file name (content on stdin)")
		}
		content, err := io.ReadAll(os.Stdin)
		if err != nil {
			return fmt.Errorf("read stdin: %w", err)
		}
		reply, err := tr.InvokeAddr(node, &past.ClientInsert{Name: args[1], Content: content, K: k})
		if err != nil {
			return err
		}
		ir := reply.(*past.ClientInsertReply)
		if !ir.OK {
			return fmt.Errorf("insert rejected after %d attempts: %s", ir.Attempts, ir.Reason)
		}
		fmt.Printf("%s\n", ir.FileID)
		fmt.Fprintf(os.Stderr, "inserted %d bytes in %d attempt(s)\n", len(content), ir.Attempts)
		return nil

	case "lookup", "exists":
		if len(args) != 2 {
			return fmt.Errorf("%s needs a fileId", args[0])
		}
		f, err := id.ParseFile(args[1])
		if err != nil {
			return err
		}
		reply, err := tr.InvokeAddr(node, &past.ClientLookup{File: f})
		if err != nil {
			return err
		}
		lr := reply.(*past.ClientLookupReply)
		if !lr.Found {
			return fmt.Errorf("file %s not found", f.Short())
		}
		if args[0] == "exists" {
			fmt.Printf("found: %d bytes, %d hops, cached=%v\n", lr.Size, lr.Hops, lr.FromCache)
			return nil
		}
		if _, err := os.Stdout.Write(lr.Content); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "retrieved %d bytes in %d hops (cached=%v)\n", lr.Size, lr.Hops, lr.FromCache)
		return nil

	case "trace":
		if len(args) != 2 {
			return fmt.Errorf("trace needs a fileId")
		}
		f, err := id.ParseFile(args[1])
		if err != nil {
			return err
		}
		// A fresh trace context rides the wire envelope to the access
		// point, which runs a hop-recorded lookup under it; every pastd
		// the route crosses appends its records, and the stitched route
		// comes back on the reply.
		tc := obs.TraceContext{ID: obs.NewTraceID(), Sampled: true, Budget: obs.DefaultTraceBudget}
		ctx := obs.ContextWithTrace(context.Background(), tc)
		reply, err := tr.InvokeAddrContext(ctx, node, &past.ClientLookup{File: f})
		if err != nil {
			return err
		}
		lr := reply.(*past.ClientLookupReply)
		trace := &obs.Trace{Op: "lookup", Key: f.Key(), Hops: lr.Trace, RouteHops: lr.Hops, OK: lr.Found}
		nodes := make(map[string]bool)
		for _, h := range lr.Trace {
			nodes[h.From.Short()] = true
		}
		fmt.Printf("trace %016x via %s\n", lr.TraceID, node)
		fmt.Printf("%s\n", trace.Detailed())
		fmt.Fprintf(os.Stderr, "found=%v hops=%d records=%d processes=%d cached=%v\n",
			lr.Found, lr.Hops, len(lr.Trace), len(nodes), lr.FromCache)
		return nil

	case "status":
		reply, err := tr.InvokeAddr(node, &past.ClientStatus{})
		if err != nil {
			return err
		}
		s := reply.(*past.ClientStatusReply).Status
		fmt.Printf("node %s  joined=%v\n", s.ID, s.Joined)
		fmt.Printf("storage: %d / %d bytes used (%.1f%%), %d replicas (%d diverted-in)\n",
			s.Used, s.Capacity, 100*float64(s.Used)/float64(max(1, s.Capacity)), s.Replicas, s.DivertedIn)
		fmt.Printf("pointers: %d diverted-out, %d backup\n", s.PointersOut, s.BackupPtrs)
		fmt.Printf("cache: %d entries, %d bytes, %d hits / %d misses\n",
			s.CacheEntries, s.CacheBytes, s.CacheHits, s.CacheMisses)
		fmt.Printf("overlay: leaf set %d, routing table %d entries, below-k events %d\n",
			s.LeafSetSize, s.TableEntries, s.BelowKEvents)
		return nil

	case "stats":
		reply, err := tr.InvokeAddr(node, &past.ClientStats{})
		if err != nil {
			return err
		}
		s := reply.(*past.ClientStatsReply).Stats
		for _, name := range s.Names() {
			fmt.Printf("%-32s %d\n", name, s.Counters[name])
		}
		if n := s.TotalRPCs(); n > 0 {
			fmt.Printf("rpc latency (%d samples):\n", n)
			for i, v := range s.RPCLat {
				if v == 0 {
					continue
				}
				if b := obs.LatencyBucketBound(i); b < 0 {
					fmt.Printf("  < +Inf        %d\n", v)
				} else {
					fmt.Printf("  < %-11s %d\n", b, v)
				}
			}
			fmt.Printf("  p50=%v p90=%v p99=%v p99.9=%v (interpolated)\n",
				s.RPCQuantile(50), s.RPCQuantile(90), s.RPCQuantile(99), s.RPCQuantile(99.9))
		}
		return nil

	case "reclaim":
		if len(args) != 2 {
			return fmt.Errorf("reclaim needs a fileId")
		}
		f, err := id.ParseFile(args[1])
		if err != nil {
			return err
		}
		reply, err := tr.InvokeAddr(node, &past.ClientReclaim{File: f})
		if err != nil {
			return err
		}
		rr := reply.(*past.ClientReclaimReply)
		if !rr.Found {
			return fmt.Errorf("file %s not found", f.Short())
		}
		fmt.Fprintf(os.Stderr, "reclaimed %d bytes\n", rr.Freed)
		return nil
	}
	return fmt.Errorf("unknown command %q", args[0])
}
