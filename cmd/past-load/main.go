// Command past-load is the open-loop workload driver. It generates a
// seeded request schedule (constant, Poisson, or square-wave arrivals
// over a Zipf-popularity file population) and reports goodput and
// coordinated-omission-free latency percentiles.
//
// Two targets:
//
//	past-load -sim -nodes 25 -rate 300              # virtual-time emulated cluster
//	past-load -addr 127.0.0.1:7001 -rate 300        # a real pastd node over TCP
//
// The sim is deterministic: a fixed seed yields a bit-identical result
// fingerprint, so runs are comparable across machines and commits.
//
//	past-load -sim -sweep                 # offered-rate sweep, shedding off vs on
//	past-load -sim -check                 # exit 0 only if shedding wins at 2x capacity
//	past-load -sim -verify                # run twice, require identical fingerprints
//	past-load -sim -cache-sweep           # cache-tier sweep: legacy vs sharded engine vs engine+flash
//	past-load -sim -cache-check           # exit 0 only if the flash tier beats capped RAM alone
//	past-load -sim -ec 4,2                # erasure-coded mode: coded inserts, m-of-n reconstructing lookups
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"past/internal/admit"
	"past/internal/ec"
	"past/internal/experiments"
	"past/internal/id"
	"past/internal/loadgen"
	"past/internal/past"
	"past/internal/topology"
	"past/internal/transport"
	"past/internal/wire"
)

func main() {
	var (
		sim  = flag.Bool("sim", false, "drive the virtual-time emulated cluster instead of a live node")
		addr = flag.String("node", "", "address of a live PAST node to drive over TCP (alias -addr)")

		rate     = flag.Float64("rate", 200, "offered request rate in req/s")
		arrivals = flag.String("arrivals", "constant", "arrival process: constant, poisson, or square")
		requests = flag.Int("requests", 2000, "total requests to issue")
		files    = flag.Int("files", 128, "file population size (Zipf-popular)")
		alpha    = flag.Float64("alpha", 0.8, "Zipf exponent for file popularity")
		lookups  = flag.Float64("lookups", 0.9, "fraction of requests that are lookups once the population exists")
		maxSize  = flag.Int64("max-size", 4096, "largest file payload in bytes")
		slo      = flag.Duration("slo", 500*time.Millisecond, "latency SLO classifying a completion as good")
		seed     = flag.Int64("seed", 1, "schedule and cluster seed")
		conc     = flag.Int("conc", 16, "TCP mode: in-flight request cap (queueing counts against latency); 0 = unbounded")

		ecMode = flag.String("ec", "", "sim: erasure-coded storage mode \"m,n\" (e.g. 4,2) — inserts are coded into fragments, lookups reconstruct from any m")

		nodes    = flag.Int("nodes", 25, "sim: cluster size")
		nodeRate = flag.Float64("node-rate", 100, "sim: per-node service rate in req/s (capacity = nodes * node-rate)")
		burst    = flag.Int("burst", 4, "sim: admission token-bucket burst")
		depth    = flag.Int("depth", 8, "sim: admission queue depth")
		policy   = flag.String("policy", "droptail", "sim: shed policy — droptail, dropfront, or lifo")
		noShed   = flag.Bool("no-shed", false, "sim: disable admission control (unbounded queue)")
		hopLat   = flag.Duration("hop-latency", time.Millisecond, "sim: virtual per-hop service time")

		sweep  = flag.Bool("sweep", false, "sim: run the offered-rate sweep (shedding off vs on) instead of a single run")
		check  = flag.Bool("check", false, "sim: run the sweep and exit non-zero unless shedding strictly improves goodput and p99 at 2x capacity")
		verify = flag.Bool("verify", false, "sim: run twice and require bit-identical fingerprints")

		cacheSweep = flag.Bool("cache-sweep", false, "sim: sweep offered rate across cache configurations (legacy / sharded engine / engine+flash) and print per-tier hit rates")
		cacheCheck = flag.Bool("cache-check", false, "sim: run the cache sweep and exit non-zero unless the flash tier beats the RAM-capped engine's hit rate")
		cacheRAM   = flag.Int64("cache-ram", 32<<10, "cache sweep: per-node RAM-tier cap in bytes (sized below the working set so the flash tier matters)")
		cacheFlash = flag.Int64("cache-flash", 1<<20, "cache sweep: per-node flash-tier capacity in bytes")
		cacheShard = flag.Int("cache-shards", 4, "cache sweep: engine RAM-tier shard count")
		cacheDoor  = flag.Bool("cache-doorkeeper", false, "cache sweep: enable the admission doorkeeper in the engine runs")
	)
	flag.CommandLine.Float64Var(rate, "r", 200, "alias for -rate")
	flag.CommandLine.StringVar(addr, "addr", "", "alias for -node")
	flag.Parse()

	pol, err := admit.ParsePolicy(*policy)
	if err != nil {
		log.Fatalf("past-load: %v", err)
	}
	w := loadgen.Workload{
		Files:      *files,
		Alpha:      *alpha,
		LookupFrac: *lookups,
		MaxPayload: *maxSize,
	}
	mkArrivals := func() loadgen.Arrivals {
		switch *arrivals {
		case "constant":
			return loadgen.NewConstant(*rate)
		case "poisson":
			return loadgen.NewPoisson(*rate)
		case "square":
			// High phase at the offered rate, low phase at a fifth, 1s period.
			return loadgen.NewSquareWave(*rate/5, *rate, time.Second, 0.5)
		default:
			log.Fatalf("past-load: unknown arrival process %q (want constant, poisson, or square)", *arrivals)
			return nil
		}
	}

	switch {
	case *cacheSweep || *cacheCheck:
		runCacheSweep(experiments.CacheRateConfig{
			Nodes:      *nodes,
			NodeRate:   *nodeRate,
			Requests:   *requests,
			Files:      *files,
			Alpha:      *alpha,
			MaxPayload: *maxSize,
			RAMBytes:   *cacheRAM,
			FlashBytes: *cacheFlash,
			Shards:     *cacheShard,
			Doorkeeper: *cacheDoor,
			Seed:       *seed,
		}, *cacheCheck)
	case *sweep || *check:
		runSweep(experiments.OverloadConfig{
			Nodes:      *nodes,
			NodeRate:   *nodeRate,
			Burst:      *burst,
			Depth:      *depth,
			Policy:     pol,
			Requests:   *requests,
			Workload:   w,
			HopLatency: *hopLat,
			SLO:        *slo,
			Seed:       *seed,
		}, *check)
	case *sim:
		sc := loadgen.SimConfig{
			Nodes:      *nodes,
			Seed:       *seed,
			Requests:   *requests,
			Arrivals:   mkArrivals(),
			Workload:   w,
			NodeRate:   *nodeRate,
			Burst:      *burst,
			Depth:      *depth,
			Policy:     pol,
			Shed:       !*noShed,
			HopLatency: *hopLat,
			SLO:        *slo,
		}
		if *ecMode != "" {
			p, err := ec.ParseParams(*ecMode)
			if err != nil {
				log.Fatalf("past-load: %v", err)
			}
			sc.EC = &p
		}
		res, err := loadgen.RunSim(sc)
		if err != nil {
			log.Fatalf("past-load: %v", err)
		}
		report(res, *slo)
		if *verify {
			sc.Arrivals = mkArrivals() // arrivals carry a cursor; rebuild
			again, err := loadgen.RunSim(sc)
			if err != nil {
				log.Fatalf("past-load: verify rerun: %v", err)
			}
			if again.Fingerprint != res.Fingerprint {
				fmt.Printf("VERIFY: FAIL — fingerprints differ\n  %s\n  %s\n", res.Fingerprint, again.Fingerprint)
				os.Exit(1)
			}
			fmt.Printf("VERIFY: ok — rerun reproduced fingerprint %s\n", res.Fingerprint)
		}
	case *addr != "":
		wire.RegisterWire()
		past.RegisterWire()
		var cid id.Node
		if _, err := rand.Read(cid[:]); err != nil {
			log.Fatalf("past-load: %v", err)
		}
		tr, err := transport.New(cid, "127.0.0.1:0", topology.Point{})
		if err != nil {
			log.Fatalf("past-load: %v", err)
		}
		defer tr.Close()
		res, err := loadgen.Run(loadgen.Config{
			Arrivals:    mkArrivals(),
			Requests:    *requests,
			Seed:        *seed,
			Workload:    w,
			Concurrency: *conc,
			SLO:         *slo,
		}, loadgen.AddrClient{T: tr, Addr: *addr})
		if err != nil {
			log.Fatalf("past-load: %v", err)
		}
		report(res, *slo)
	default:
		fmt.Fprintln(os.Stderr, "past-load: pick a target: -sim (emulated cluster) or -node addr (live node)")
		flag.Usage()
		os.Exit(2)
	}
}

func report(res *loadgen.Result, slo time.Duration) {
	fmt.Println(res)
	fmt.Printf("goodput %.1f req/s (SLO %v)  p50 %v  p99 %v  p99.9 %v\n",
		res.Goodput(), slo,
		res.P(50).Round(time.Microsecond),
		res.P(99).Round(time.Microsecond),
		res.P(99.9).Round(time.Microsecond))
	if c := res.Cache; c.FragHits > 0 || c.Reconstructs > 0 {
		fmt.Printf("ec: %d reconstructions from %d fragment-level hits (%d corrupt copies dropped)\n",
			c.Reconstructs, c.FragHits, c.FragCRCDrops)
	}
	if res.Fingerprint != "" {
		fmt.Printf("fingerprint: %s\n", res.Fingerprint)
	}
}

// runSweep executes the offered-rate sweep; under check it also
// asserts the headline overload-protection property and sets the exit
// status accordingly.
func runSweep(cfg experiments.OverloadConfig, check bool) {
	res, err := experiments.RunOverload(cfg)
	if err != nil {
		log.Fatalf("past-load: %v", err)
	}
	fmt.Print(experiments.RenderOverload(res))
	if !check {
		return
	}
	off, on := res.At(2, false), res.At(2, true)
	if off == nil || on == nil {
		fmt.Println("CHECK: FAIL — sweep is missing the 2x-capacity points")
		os.Exit(1)
	}
	switch {
	case on.Result.Shed == 0:
		fmt.Println("CHECK: FAIL — admission control shed nothing at 2x capacity")
		os.Exit(1)
	case on.Goodput() <= off.Goodput():
		fmt.Printf("CHECK: FAIL — goodput with shedding %.1f/s <= without %.1f/s\n",
			on.Goodput(), off.Goodput())
		os.Exit(1)
	case on.Result.P(99) >= off.Result.P(99):
		fmt.Printf("CHECK: FAIL — p99 with shedding %v >= without %v\n",
			on.Result.P(99), off.Result.P(99))
		os.Exit(1)
	}
	fmt.Printf("CHECK: ok — at 2x capacity shedding lifts goodput %.1f/s -> %.1f/s and cuts p99 %v -> %v\n",
		off.Goodput(), on.Goodput(),
		off.Result.P(99).Round(time.Millisecond), on.Result.P(99).Round(time.Millisecond))
}

// runCacheSweep executes the cache-configuration sweep; under check it
// also asserts the flash tier's hit-rate property and sets the exit
// status accordingly.
func runCacheSweep(cfg experiments.CacheRateConfig, check bool) {
	res, err := experiments.RunCacheRate(cfg)
	if err != nil {
		log.Fatalf("past-load: %v", err)
	}
	fmt.Print(experiments.RenderCacheRate(res))
	if !check {
		return
	}
	if err := experiments.CheckCacheRate(res); err != nil {
		fmt.Printf("CHECK: FAIL — %v\n", err)
		os.Exit(1)
	}
	last := cfg.Multipliers
	if len(last) == 0 {
		last = []float64{0.25, 0.5, 1}
	}
	mult := last[len(last)-1]
	ram, fl := res.At(mult, experiments.ModeRAM), res.At(mult, experiments.ModeFlash)
	fmt.Printf("CHECK: ok — at %.2fx the flash tier lifts hit rate %.1f%% -> %.1f%% at equal RAM (%dKB)\n",
		mult, 100*ram.HitRate(), 100*fl.HitRate(), cfg.RAMBytes>>10)
}
