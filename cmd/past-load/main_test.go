package main

import (
	"testing"
	"time"

	"past/internal/loadgen"
)

func TestReportDoesNotPanic(t *testing.T) {
	res, err := loadgen.RunSim(loadgen.SimConfig{
		Nodes:    6,
		Seed:     1,
		Requests: 200,
		Arrivals: loadgen.NewConstant(300),
		Workload: loadgen.Workload{Files: 16},
		NodeRate: 50,
		Shed:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	report(res, 500*time.Millisecond)
}
