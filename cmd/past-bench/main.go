// Command past-bench regenerates the tables and figures of the PAST
// paper's evaluation (section 5) on the emulated network.
//
// Usage:
//
//	past-bench -exp table2 -scale bench
//	past-bench -exp all -scale tiny
//	past-bench -exp fig8 -scale full     # paper scale: 2250 nodes, ~1.8M files
//
// Experiments: table1, baseline, table2, table3 (with fig2), table4
// (with fig3), fig4, fig5, fig6, fig7, fig8, routing, overload, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"past/internal/experiments"
	"past/internal/obs"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id: table1|baseline|table2|table3|table4|fig4|fig5|fig6|fig7|fig8|routing|frag|overhead|overload|all")
		scale  = flag.String("scale", "bench", "scale preset: tiny|bench|full")
		seed   = flag.Int64("seed", 1, "random seed")
		seeds  = flag.Int("seeds", 1, "repeat the table experiments over N seeds and report mean±sd")
		evPath = flag.String("events", "", "append one JSONL summary event per experiment to this file")
	)
	flag.Parse()

	sc, err := experiments.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var elog *obs.EventLog
	if *evPath != "" {
		f, err := os.Create(*evPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "past-bench:", err)
			os.Exit(2)
		}
		elog = obs.NewEventLog(f)
		defer func() {
			if err := elog.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "past-bench: event log:", err)
			}
			f.Close()
		}()
	}
	if *seeds > 1 {
		if err := runMulti(*exp, sc, *seed, *seeds, elog); err != nil {
			fmt.Fprintln(os.Stderr, "past-bench:", err)
			elog.Close()
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, sc, *seed, elog); err != nil {
		fmt.Fprintln(os.Stderr, "past-bench:", err)
		elog.Close()
		os.Exit(1)
	}
}

// runMulti repeats the table sweeps over several seeds, reporting
// mean±sd per cell.
func runMulti(exp string, sc experiments.Scale, seed0 int64, n int, elog *obs.EventLog) error {
	seedList := make([]int64, n)
	for i := range seedList {
		seedList[i] = seed0 + int64(i)
	}
	type sweep struct {
		id    string
		run   func(int64) ([]*experiments.StorageResult, error)
		label func(*experiments.StorageResult) string
	}
	sweeps := []sweep{
		{"baseline", func(s int64) ([]*experiments.StorageResult, error) {
			r, err := experiments.Baseline(sc, s)
			return []*experiments.StorageResult{r}, err
		}, func(*experiments.StorageResult) string { return "baseline" }},
		{"table2", func(s int64) ([]*experiments.StorageResult, error) { return experiments.RunTable2(sc, s) },
			func(r *experiments.StorageResult) string {
				return fmt.Sprintf("%s,l=%d", r.Config.Dist.Name, r.Config.L)
			}},
		{"table3", func(s int64) ([]*experiments.StorageResult, error) { return experiments.RunTable3(sc, s) },
			func(r *experiments.StorageResult) string { return fmt.Sprintf("tpri=%g", r.Config.TPri) }},
		{"table4", func(s int64) ([]*experiments.StorageResult, error) { return experiments.RunTable4(sc, s) },
			func(r *experiments.StorageResult) string { return fmt.Sprintf("tdiv=%g", r.Config.TDiv) }},
	}
	for _, sw := range sweeps {
		if exp != "all" && exp != sw.id {
			continue
		}
		start := time.Now()
		runs, err := experiments.MultiSeed(seedList, sw.run)
		if err != nil {
			return err
		}
		labels := experiments.StorageLabels(runs[0], sw.label)
		fmt.Printf("==== %s (scale=%s, %d seeds, %.1fs) ====\n%s\n",
			sw.id, sc.Name, n, time.Since(start).Seconds(),
			experiments.RenderStorageMulti(sw.id, labels, runs))
		elog.Emit(obs.Event{
			Kind: "experiment", Op: sw.id, N: time.Since(start).Milliseconds(), OK: true,
			Detail: fmt.Sprintf("scale=%s seeds=%d", sc.Name, n),
		})
	}
	return nil
}

func run(exp string, sc experiments.Scale, seed int64, elog *obs.EventLog) error {
	ids := []string{exp}
	if exp == "all" {
		ids = []string{"table1", "baseline", "table2", "table3", "table4",
			"fig4", "fig5", "fig6", "fig7", "fig8", "routing", "frag", "overhead", "overload"}
	}
	// The standard run feeds fig4, fig5, and fig6; cache it.
	var std *experiments.StorageResult
	standard := func() (*experiments.StorageResult, error) {
		if std != nil {
			return std, nil
		}
		var err error
		std, err = experiments.StandardRun(sc, experiments.WebWorkload, seed)
		return std, err
	}

	for _, id := range ids {
		start := time.Now()
		var out string
		switch id {
		case "table1":
			out = experiments.RenderTable1(experiments.RunTable1(2250, seed))
		case "baseline":
			r, err := experiments.Baseline(sc, seed)
			if err != nil {
				return err
			}
			out = experiments.RenderBaseline(r)
		case "table2":
			rows, err := experiments.RunTable2(sc, seed)
			if err != nil {
				return err
			}
			out = experiments.RenderTable2(rows)
		case "table3":
			rows, err := experiments.RunTable3(sc, seed)
			if err != nil {
				return err
			}
			out = experiments.RenderTable3(rows) + "\n" + experiments.RenderFig2(rows)
		case "table4":
			rows, err := experiments.RunTable4(sc, seed)
			if err != nil {
				return err
			}
			out = experiments.RenderTable4(rows) + "\n" + experiments.RenderFig3(rows)
		case "fig4":
			r, err := standard()
			if err != nil {
				return err
			}
			out = experiments.RenderFig4(r)
		case "fig5":
			r, err := standard()
			if err != nil {
				return err
			}
			out = experiments.RenderFig5(r)
		case "fig6":
			r, err := standard()
			if err != nil {
				return err
			}
			out = experiments.RenderFig6(r, "Figure 6: insertion failures vs utilization (NLANR-like workload)")
		case "fig7":
			r, err := experiments.StandardRun(sc, experiments.FSWorkload, seed)
			if err != nil {
				return err
			}
			out = experiments.RenderFig6(r, "Figure 7: insertion failures vs utilization (filesystem workload, capacities x10)")
		case "fig8":
			rows, err := experiments.RunFig8(sc, seed)
			if err != nil {
				return err
			}
			out = experiments.RenderFig8(rows)
		case "routing":
			r, err := experiments.RunRouting(sc, seed)
			if err != nil {
				return err
			}
			out = experiments.RenderRouting(r)
		case "frag":
			r, err := experiments.RunFragmentation(sc, seed)
			if err != nil {
				return err
			}
			out = experiments.RenderFragmentation(r)
		case "overhead":
			r, err := experiments.RunOverhead(sc, seed)
			if err != nil {
				return err
			}
			out = experiments.RenderOverhead(r)
		case "overload":
			r, err := experiments.RunOverload(experiments.OverloadConfig{Seed: seed})
			if err != nil {
				return err
			}
			out = experiments.RenderOverload(r)
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		fmt.Printf("==== %s (scale=%s, %.1fs) ====\n%s\n", id, sc.Name, time.Since(start).Seconds(), out)
		elog.Emit(obs.Event{
			Kind: "experiment", Op: id, N: time.Since(start).Milliseconds(), OK: true,
			Detail: fmt.Sprintf("scale=%s seed=%d", sc.Name, seed),
		})
	}
	return nil
}
