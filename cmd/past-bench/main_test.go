package main

import (
	"testing"

	"past/internal/experiments"
)

func TestRunSingleExperiments(t *testing.T) {
	// table1 and routing are cheap enough for CI; the heavyweight
	// experiments are covered by internal/experiments tests and the
	// root benchmarks.
	for _, exp := range []string{"table1", "routing", "overload"} {
		if err := run(exp, experiments.ScaleTiny, 1, nil); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("tableX", experiments.ScaleTiny, 1, nil); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}
