package main

import (
	"fmt"
	"os"

	"past/internal/chaos"
)

// runCrashSoak drives the storage crash-fault harness: repeated
// kill-mid-commit / truncate-tail / reopen cycles against a logstore,
// each recovery checked against the durability oracle, with a final
// fsck pass. Exit code 0 means every invariant held.
func runCrashSoak(w *os.File, seed int64, lives, ops int, dir string, keep bool) (int, error) {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "past-crash-*")
		if err != nil {
			return 0, err
		}
		dir = tmp
		if !keep {
			defer os.RemoveAll(tmp)
		}
	}
	fmt.Fprintf(w, "crash soak: seed=%d lives=%d ops/life=%d dir=%s\n", seed, lives, ops, dir)
	rep, err := chaos.RunCrash(chaos.CrashConfig{Dir: dir, Seed: seed, Lives: lives, OpsPer: ops})
	if err != nil {
		fmt.Fprintf(w, "CRASH SOAK: FAIL — %v\n", err)
		return 1, nil
	}
	fmt.Fprintf(w, "  lives recovered      %d/%d\n", rep.RecoveredOK, rep.Lives)
	fmt.Fprintf(w, "  mutations applied    %d\n", rep.Ops)
	fmt.Fprintf(w, "  WAL bytes torn off   %d\n", rep.Truncated)
	fmt.Fprintf(w, "  ops lost to cuts     %d (rolled back by recovery, as expected)\n", rep.LostOps)
	fmt.Fprintf(w, "  final entries        %d\n", rep.FinalEntries)
	fmt.Fprintf(w, "  final fsck           ok\n")
	fmt.Fprintf(w, "  fingerprint          %s\n", rep.Fingerprint)
	if keep {
		fmt.Fprintf(w, "store kept at %s (inspect with: past-state fsck %s)\n", dir, dir)
	}
	fmt.Fprintln(w, "CRASH SOAK: ok — every recovery matched the durable prefix")
	return 0, nil
}
