// Command past-chaos runs the fault-injection soak: a PAST cluster is
// driven through a seeded schedule of message loss, duplication,
// latency, a network partition, and node crash/recovery, with the
// storage invariants checked every virtual tick and full convergence
// asserted after the faults lift.
//
// Usage:
//
//	past-chaos                          # default soak, seed 1
//	past-chaos -seed 7 -ticks 30        # longer run, different timeline
//	past-chaos -nodes 50 -files 100 -drop 0.1 -part-frac 0.3
//	past-chaos -seed 7 -verify          # run twice, assert identical fingerprints
//	past-chaos -resilience              # soak with the client resilience layer on
//	past-chaos -compare                 # same schedule, layer off vs on, side by side
//	past-chaos -trace 4 -events-out run.jsonl   # trace every 4th op, stream JSONL events
//	past-chaos -admit-rate 5 -events-out run.jsonl   # soak behind admission control; sheds stream as "overload" events
//	past-chaos -check-events run.jsonl  # validate and summarize an event stream
//	past-chaos -ec-durability           # erasure-coding repair-vs-durability sweep, coded vs replicated
//	past-chaos -crash                   # storage crash soak: kill a logstore mid-commit, recover, verify
//	past-chaos -crash -crash-lives 10 -crash-ops 500 -crash-dir /tmp/ls -keep
//
// The run is deterministic: the same flags always produce the same
// fault timeline, the same fingerprint, and the same verdict — with or
// without tracing and event streaming, which are observation-only. Exit
// status is 0 only if every invariant held.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"past/internal/admit"
	"past/internal/experiments"
	"past/internal/obs"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 0, "cluster size (default 30)")
		files    = flag.Int("files", 0, "files to insert before the faults start (default 40)")
		k        = flag.Int("k", 0, "replication factor (default 3)")
		seed     = flag.Int64("seed", 1, "schedule seed")
		ticks    = flag.Int("ticks", 0, "fault-phase length in virtual ticks (default 12)")
		drop     = flag.Float64("drop", 0, "per-message drop probability (default 0.05)")
		dup      = flag.Float64("dup", 0, "per-message duplication probability (default 0.05)")
		delay    = flag.Int("delay", 0, "per-message virtual latency in ms (default 5)")
		churn    = flag.Int("churn-every", 0, "ticks between crash events (default 3)")
		downFor  = flag.Int("down-for", 0, "ticks a crashed node stays down (default 2)")
		partFrom = flag.Int("part-from", 0, "partition start tick (default 4; negative disables)")
		partFor  = flag.Int("part-for", 0, "partition duration in ticks (default 3)")
		partFrac = flag.Float64("part-frac", 0, "fraction of nodes isolated by the partition (default 0.2)")
		events   = flag.Bool("events", false, "print the retained fault event log")
		verify   = flag.Bool("verify", false, "run the soak twice and require identical fingerprints")
		resil    = flag.Bool("resilience", false, "enable the client resilience layer (retries, hedged lookups, partial inserts)")
		compare  = flag.Bool("compare", false, "run the schedule with the resilience layer off and on and compare")
		trace    = flag.Int("trace", 0, "sample every Nth client operation for a per-hop route trace (0: off)")
		evOut    = flag.String("events-out", "", "write the structured JSONL event stream to this file")
		evCheck  = flag.String("check-events", "", "validate a JSONL event stream and print a summary (no soak runs)")

		admitRate   = flag.Float64("admit-rate", 0, "put every node behind admission control at this rate in req/s; rejections become \"overload\" events (0: off)")
		admitBurst  = flag.Int("admit-burst", 4, "admission control: token-bucket burst")
		admitDepth  = flag.Int("admit-depth", 8, "admission control: bounded queue depth before shedding")
		admitPolicy = flag.String("admit-policy", "droptail", "admission control: shed policy — droptail, dropfront, or lifo")

		ecDur = flag.Bool("ec-durability", false, "run the erasure-coding repair-vs-durability sweep instead of the network soak")

		crash      = flag.Bool("crash", false, "run the storage crash soak instead of the network soak")
		crashLives = flag.Int("crash-lives", 5, "crash soak: kill/recover cycles")
		crashOps   = flag.Int("crash-ops", 200, "crash soak: mutations per life")
		crashDir   = flag.String("crash-dir", "", "crash soak: logstore directory (empty: a fresh temp dir)")
		keep       = flag.Bool("keep", false, "crash soak: keep the store directory for inspection (e.g. past-state fsck)")
	)
	flag.Parse()

	if *ecDur {
		code, err := runECDurability(os.Stdout, *seed, *verify)
		if err != nil {
			fmt.Fprintln(os.Stderr, "past-chaos:", err)
			os.Exit(2)
		}
		os.Exit(code)
	}

	if *crash {
		code, err := runCrashSoak(os.Stdout, *seed, *crashLives, *crashOps, *crashDir, *keep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "past-chaos:", err)
			os.Exit(2)
		}
		os.Exit(code)
	}

	if *evCheck != "" {
		code, err := checkEvents(os.Stdout, *evCheck)
		if err != nil {
			fmt.Fprintln(os.Stderr, "past-chaos:", err)
			os.Exit(2)
		}
		os.Exit(code)
	}

	cfg := experiments.SoakConfig{
		Nodes: *nodes, Files: *files, K: *k, Seed: *seed, Ticks: *ticks,
		Drop: *drop, Dup: *dup, DelayMS: *delay,
		ChurnEvery: *churn, DownFor: *downFor,
		PartitionFrom: *partFrom, PartitionFor: *partFor, PartitionFrac: *partFrac,
		Resilience: *resil, TraceEvery: *trace,
	}
	if *admitRate > 0 {
		pol, err := admit.ParsePolicy(*admitPolicy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "past-chaos:", err)
			os.Exit(2)
		}
		cfg.Admit = &admit.Config{
			Rate: *admitRate, Burst: *admitBurst, Depth: *admitDepth, Policy: pol,
		}
	}
	var evFile *os.File
	if *evOut != "" {
		f, err := os.Create(*evOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "past-chaos:", err)
			os.Exit(2)
		}
		evFile = f
		cfg.Events = obs.NewEventLog(f)
	}
	var code int
	var err error
	if *compare {
		code, err = runCompare(os.Stdout, cfg)
	} else {
		code, err = run(os.Stdout, cfg, *events, *verify)
	}
	if evFile != nil {
		if cerr := cfg.Events.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("event log: %w", cerr)
		}
		if cerr := evFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err == nil {
			fmt.Printf("wrote %d events to %s\n", cfg.Events.Count(), *evOut)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "past-chaos:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// runECDurability runs the repair-rate-vs-durability sweep (section
// 3.6's trade-off: coded fragments plus lazy bandwidth-capped repair
// against k-way replication at equal storage overhead) and asserts its
// acceptance properties.
func runECDurability(w *os.File, seed int64, verify bool) (int, error) {
	r, err := experiments.RunECDurability(experiments.ECDurabilityConfig{Seed: seed})
	if err != nil {
		return 0, err
	}
	fmt.Fprint(w, experiments.RenderECDurability(r))
	if verify {
		r2, err := experiments.RunECDurability(experiments.ECDurabilityConfig{Seed: seed})
		if err != nil {
			return 0, fmt.Errorf("verify rerun: %w", err)
		}
		if r2.Fingerprint != r.Fingerprint {
			fmt.Fprintf(w, "VERIFY: FAIL — fingerprints differ\n  %s\n  %s\n", r.Fingerprint, r2.Fingerprint)
			return 1, nil
		}
		fmt.Fprintf(w, "VERIFY: ok — rerun reproduced fingerprint %s\n", r2.Fingerprint)
	}
	if err := experiments.CheckECDurability(r); err != nil {
		fmt.Fprintf(w, "CHECK: FAIL — %v\n", err)
		return 1, nil
	}
	fmt.Fprintln(w, "CHECK: ok")
	return 0, nil
}

// checkEvents validates a JSONL event stream file and prints a per-kind
// summary. Exit code 1 signals a malformed stream.
func checkEvents(w *os.File, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	evs, err := obs.ReadEvents(f)
	if err != nil {
		fmt.Fprintf(w, "CHECK: FAIL — %v (after %d valid events)\n", err, len(evs))
		return 1, nil
	}
	fmt.Fprintf(w, "%s: %d events\n", path, len(evs))
	byKind := obs.CountByKind(evs)
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-10s %d\n", k, byKind[k])
	}
	fmt.Fprintln(w, "CHECK: ok")
	return 0, nil
}

// run executes the soak (twice under verify), writes the report, and
// returns the process exit code.
func run(w *os.File, cfg experiments.SoakConfig, events, verify bool) (int, error) {
	r, err := experiments.RunSoak(cfg)
	if err != nil {
		return 0, err
	}
	fmt.Fprint(w, experiments.RenderSoak(r))
	if events {
		fmt.Fprintf(w, "event log (%d of %d retained):\n", len(r.Events), r.EventCount)
		for _, e := range r.Events {
			fmt.Fprintf(w, "  %s\n", e)
		}
	}
	if verify {
		r2, err := experiments.RunSoak(cfg)
		if err != nil {
			return 0, fmt.Errorf("verify rerun: %w", err)
		}
		if r2.Fingerprint != r.Fingerprint {
			fmt.Fprintf(w, "VERIFY: FAIL — fingerprints differ\n  %s\n  %s\n", r.Fingerprint, r2.Fingerprint)
			return 1, nil
		}
		fmt.Fprintf(w, "VERIFY: ok — rerun reproduced fingerprint %s\n", r2.Fingerprint)
	}
	if !r.OK() {
		return 1, nil
	}
	return 0, nil
}

// runCompare executes the off/on pair over one schedule and reports
// them side by side. Exit status is 0 only if both runs held every
// invariant and the layer did not make fault-phase lookups worse.
func runCompare(w *os.File, cfg experiments.SoakConfig) (int, error) {
	c, err := experiments.CompareSoak(cfg)
	if err != nil {
		return 0, err
	}
	fmt.Fprint(w, experiments.RenderSoakComparison(c))
	if !c.Off.OK() || !c.On.OK() || c.On.FaultLookupRate() < c.Off.FaultLookupRate() {
		return 1, nil
	}
	return 0, nil
}
