package main

import (
	"os"
	"path/filepath"
	"testing"

	"past/internal/experiments"
	"past/internal/obs"
)

func TestRunDefaultSoak(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	code, err := run(null, experiments.SoakConfig{Seed: 1, Nodes: 25, Files: 25, Ticks: 8}, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d; want 0 (invariant violation?)", code)
	}
}

func TestRunVerifyMode(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	code, err := run(null, experiments.SoakConfig{Seed: 2, Nodes: 25, Files: 25, Ticks: 8}, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d; want 0", code)
	}
}

func TestCheckEvents(t *testing.T) {
	dir := t.TempDir()
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()

	good := filepath.Join(dir, "good.jsonl")
	f, err := os.Create(good)
	if err != nil {
		t.Fatal(err)
	}
	elog := obs.NewEventLog(f)
	cfg := experiments.SoakConfig{Seed: 9, Nodes: 25, Files: 25, Ticks: 6, TraceEvery: 2, Events: elog}
	if code, err := run(null, cfg, false, false); err != nil || code != 0 {
		t.Fatalf("soak run: code %d, err %v", code, err)
	}
	if err := elog.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if elog.Count() == 0 {
		t.Fatal("soak emitted no events")
	}
	if code, err := checkEvents(null, good); err != nil || code != 0 {
		t.Fatalf("checkEvents(good) = %d, %v; want 0, nil", code, err)
	}

	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"kind\":\"fault\"}\nnope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, err := checkEvents(null, bad); err != nil || code != 1 {
		t.Fatalf("checkEvents(bad) = %d, %v; want 1, nil", code, err)
	}
	if _, err := checkEvents(null, filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("checkEvents on a missing file must error")
	}
}
