package main

import (
	"os"
	"testing"

	"past/internal/experiments"
)

func TestRunDefaultSoak(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	code, err := run(null, experiments.SoakConfig{Seed: 1, Nodes: 25, Files: 25, Ticks: 8}, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d; want 0 (invariant violation?)", code)
	}
}

func TestRunVerifyMode(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	code, err := run(null, experiments.SoakConfig{Seed: 2, Nodes: 25, Files: 25, Ticks: 8}, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d; want 0", code)
	}
}
