// Command past-state reproduces Figure 1 of the paper: the state of a
// Pastry node — routing table (rows of 2^b-1 entries, the shared prefix
// with the present node highlighted), leaf set (smaller and larger
// sides), and neighborhood set.
//
// It builds an emulated network with the figure's parameters (b=2, l=8)
// and prints one node's state, nodeIds rendered as base-2^b digit
// strings like the figure's base-4 ids.
//
// It also carries the offline storage inspector:
//
//	past-state fsck <dir>
//
// verifies a log-structured store directory (WAL framing and checksums,
// segment record checksums, checkpoint consistency, orphaned segments)
// and exits non-zero if it finds corruption.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"past/internal/id"
	"past/internal/netsim"
	"past/internal/pastry"
	"past/internal/topology"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "fsck" {
		os.Exit(runFsck(os.Args[2:]))
	}
	var (
		n      = flag.Int("n", 64, "number of nodes in the emulated network")
		b      = flag.Int("b", 2, "bits per digit (the figure uses 2, i.e. base 4)")
		l      = flag.Int("l", 8, "leaf set size")
		digits = flag.Int("digits", 8, "id digits to print")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if err := run(*n, *b, *l, *digits, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "past-state:", err)
		os.Exit(1)
	}
}

func run(n, b, l, digits int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	net := netsim.New()
	cfg := pastry.Config{B: b, L: l}
	var nodes []*pastry.Node
	plane := topology.DefaultPlane
	for i := 0; i < n; i++ {
		var nid id.Node
		rng.Read(nid[:])
		node := pastry.New(nid, net, cfg, nil, rng.Int63())
		net.Register(nid, plane.RandomPoint(rng), node)
		if i == 0 {
			node.Bootstrap()
		} else {
			boot := nodes[rng.Intn(len(nodes))].ID()
			if err := node.Join(boot); err != nil {
				return err
			}
		}
		nodes = append(nodes, node)
	}

	subject := nodes[rng.Intn(len(nodes))]
	self := subject.ID()
	render := func(x id.Node) string { return digitString(x, b, digits) }

	fmt.Printf("NodeId %s   (b=%d, l=%d, %d nodes; ids shown as leading %d base-%d digits)\n\n",
		render(self), b, l, n, digits, 1<<b)

	fmt.Println("Routing table (row r: entries share the first r digits; own digit marked *)")
	rows := digits // print only rows the id display covers
	for r := 0; r < rows; r++ {
		row := subject.TableRow(r)
		var cells []string
		for col, e := range row {
			if col == self.Digit(r, b) {
				cells = append(cells, fmt.Sprintf("[*%d*]", col))
				continue
			}
			if e.IsZero() {
				cells = append(cells, strings.Repeat("-", digits+2))
				continue
			}
			cells = append(cells, formatEntry(e, b, r, digits))
		}
		fmt.Printf("  row %d: %s\n", r, strings.Join(cells, " "))
	}

	lo, hi := subject.LeafSides()
	fmt.Println("\nLeaf set")
	fmt.Printf("  SMALLER: %s\n", renderList(lo, render))
	fmt.Printf("  LARGER:  %s\n", renderList(hi, render))

	fmt.Println("\nNeighborhood set (proximally closest)")
	fmt.Printf("  %s\n", renderList(subject.Neighborhood(), render))
	return nil
}

// digitString renders the leading digits of an id in base 2^b.
func digitString(x id.Node, b, digits int) string {
	var sb strings.Builder
	for i := 0; i < digits; i++ {
		fmt.Fprintf(&sb, "%x", x.Digit(i, b))
	}
	return sb.String()
}

// formatEntry renders a routing-table entry split the way Figure 1 does:
// common prefix - next digit - rest.
func formatEntry(e id.Node, b, row, digits int) string {
	s := digitString(e, b, digits)
	if row >= len(s) {
		return s
	}
	return s[:row] + "|" + s[row:row+1] + "|" + s[row+1:]
}

func renderList(ids []id.Node, render func(id.Node) string) string {
	if len(ids) == 0 {
		return "(empty)"
	}
	out := make([]string, len(ids))
	for i, x := range ids {
		out[i] = render(x)
	}
	return strings.Join(out, " ")
}
