package main

import (
	"testing"

	"past/internal/id"
)

func TestRunProducesState(t *testing.T) {
	// run prints to stdout; here we only assert it completes without
	// error on the Figure 1 parameters.
	if err := run(32, 2, 8, 8, 1); err != nil {
		t.Fatal(err)
	}
}

func TestDigitString(t *testing.T) {
	n := id.Node{0x1B} // base-4 digits 0,1,2,3
	if s := digitString(n, 2, 4); s != "0123" {
		t.Fatalf("digitString = %q; want 0123", s)
	}
}

func TestFormatEntry(t *testing.T) {
	n := id.Node{0x1B}
	if s := formatEntry(n, 2, 1, 4); s != "0|1|23" {
		t.Fatalf("formatEntry = %q", s)
	}
	if s := formatEntry(n, 2, 9, 4); s != "0123" {
		t.Fatalf("row beyond display = %q", s)
	}
}

func TestRenderList(t *testing.T) {
	r := func(x id.Node) string { return x.Short() }
	if s := renderList(nil, r); s != "(empty)" {
		t.Fatalf("empty list = %q", s)
	}
	if s := renderList([]id.Node{id.NodeFromUint64(1)}, r); s == "" {
		t.Fatal("non-empty render empty")
	}
}
