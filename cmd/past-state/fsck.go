package main

import (
	"flag"
	"fmt"
	"os"

	"past/internal/logstore"
)

// runFsck implements the "past-state fsck <dir>" subcommand. Exit
// codes: 0 clean, 1 corruption found, 2 usage or I/O error.
func runFsck(args []string) int {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	quiet := fs.Bool("q", false, "print nothing on a clean store")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: past-state fsck [-q] <logstore-dir>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	rep, err := logstore.Fsck(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "past-state: fsck:", err)
		return 2
	}
	if !rep.OK() {
		fmt.Print(rep)
		return 1
	}
	if !*quiet {
		fmt.Print(rep)
	}
	return 0
}
