// Package past_bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks, plus the ablation benches DESIGN.md calls
// out. Each benchmark runs a complete trace-driven experiment and
// reports the headline quantities (utilization, failure rate, hit rate,
// hops) as custom metrics, so `go test -bench=. -benchmem` produces the
// full results table. Benchmarks default to the tiny scale; use
// cmd/past-bench -scale=bench|full for larger runs.
package past_bench

import (
	"fmt"
	"math/rand"
	"testing"

	"past/internal/cache"
	"past/internal/experiments"
	"past/internal/id"
	"past/internal/logstore"
	"past/internal/rs"
	"past/internal/stats"
	"past/internal/store"
)

const benchSeed = 1

func reportStorage(b *testing.B, r *experiments.StorageResult) {
	b.ReportMetric(100*r.FinalUtil, "util%")
	b.ReportMetric(r.FailPct, "fail%")
	b.ReportMetric(r.ReplicaDiversionPct, "repdiv%")
	b.ReportMetric(r.FileDiversionPct, "filediv%")
}

// BenchmarkTable1 samples the four node-capacity distributions.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunTable1(2250, benchSeed)
		if len(rows) != 4 {
			b.Fatal("bad table 1")
		}
	}
}

// BenchmarkBaselineNoDiversion reproduces the section 5.1 baseline:
// tpri=1, tdiv=0, no re-salting (paper: 51.1% failures, 60.8% util).
func BenchmarkBaselineNoDiversion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Baseline(experiments.ScaleTiny, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportStorage(b, r)
	}
}

// BenchmarkTable2 reproduces Table 2: d1-d4 x l in {16,32}.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable2(experiments.ScaleTiny, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportStorage(b, rows[len(rows)-1])
	}
}

// BenchmarkTable3 reproduces Table 3 and Figure 2 (tpri sweep).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable3(experiments.ScaleTiny, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportStorage(b, rows[2]) // tpri=0.1, the paper's default
	}
}

// BenchmarkTable4 reproduces Table 4 and Figure 3 (tdiv sweep).
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable4(experiments.ScaleTiny, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportStorage(b, rows[1]) // tdiv=0.05, the paper's default
	}
}

// BenchmarkFig4 regenerates the standard run behind Figures 4, 5, and 6.
func BenchmarkFig4(b *testing.B) { benchStandard(b, experiments.WebWorkload) }

// BenchmarkFig5 is the same run as Figure 4 (the figures share it).
func BenchmarkFig5(b *testing.B) { benchStandard(b, experiments.WebWorkload) }

// BenchmarkFig6 is the same run; its render is the failure scatter.
func BenchmarkFig6(b *testing.B) { benchStandard(b, experiments.WebWorkload) }

// BenchmarkFig7 runs the filesystem workload with capacities x10.
func BenchmarkFig7(b *testing.B) { benchStandard(b, experiments.FSWorkload) }

func benchStandard(b *testing.B, kind experiments.WorkloadKind) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.StandardRun(experiments.ScaleTiny, kind, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reportStorage(b, r)
	}
}

// BenchmarkFig8 reproduces the caching experiment: GD-S vs LRU vs no
// caching (paper: GD-S >= LRU; hops below no-caching even at 99% util).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig8(experiments.ScaleTiny, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Config.Policy {
			case cache.GDS:
				b.ReportMetric(r.HitRate, "gds-hit")
				b.ReportMetric(r.MeanHops, "gds-hops")
			case cache.None:
				b.ReportMetric(r.MeanHops, "none-hops")
			}
		}
	}
}

// BenchmarkRouteHops measures the section 2.1 routing properties.
func BenchmarkRouteHops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunRouting(experiments.ScaleTiny, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanHops, "hops")
		b.ReportMetric(r.NearestPct, "nearest%")
	}
}

// BenchmarkAblationLeafSetSize varies l (Table 2 discussion: larger leaf
// sets widen the local load-balancing scope; beyond 32 the paper saw no
// further gain).
func BenchmarkAblationLeafSetSize(b *testing.B) {
	for _, l := range []int{8, 16, 32, 64} {
		b.Run(benchName("l", l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.RunStorage(experiments.StorageConfig{
					Nodes: experiments.ScaleTiny.Nodes,
					Dist:  experiments.D1, L: l,
					TPri: 0.1, TDiv: 0.05, MaxRetries: 3,
					Workload: experiments.WebWorkload, Seed: benchSeed,
				})
				if err != nil {
					b.Fatal(err)
				}
				reportStorage(b, r)
			}
		})
	}
}

// BenchmarkAblationDivertPolicy compares the paper's max-free-space
// diverted-replica target choice against a random eligible node
// (section 3.3.1, policy 2).
func BenchmarkAblationDivertPolicy(b *testing.B) {
	for _, random := range []bool{false, true} {
		name := "maxfree"
		if random {
			name = "random"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.RunStorage(experiments.StorageConfig{
					Nodes: experiments.ScaleTiny.Nodes,
					Dist:  experiments.D1, L: 32,
					TPri: 0.1, TDiv: 0.05, MaxRetries: 3,
					Workload: experiments.WebWorkload, Seed: benchSeed,
					RandomDivert: random,
				})
				if err != nil {
					b.Fatal(err)
				}
				reportStorage(b, r)
			}
		})
	}
}

// BenchmarkAblationCachePolicy compares all four cache policies on the
// caching workload (section 4).
func BenchmarkAblationCachePolicy(b *testing.B) {
	for _, pol := range []cache.Policy{cache.GDS, cache.LRU, cache.FIFO, cache.None} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.RunCaching(experiments.CachingConfig{
					Nodes:   experiments.ScaleTiny.CacheNodes,
					Clients: experiments.ScaleTiny.Clients,
					Sites:   experiments.ScaleTiny.Sites,
					Policy:  pol,
					Seed:    benchSeed,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.HitRate, "hit")
				b.ReportMetric(r.MeanHops, "hops")
			}
		})
	}
}

// BenchmarkFragmentation runs the section 3.4/3.6 experiment: at ~76%
// utilization, large files that fail whole-file insertion succeed as
// fragments, and RS(8,4) fragments cost ~30% of replicated fragments.
func BenchmarkFragmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFragmentation(experiments.ScaleTiny, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.WholeOK), "whole-ok")
		b.ReportMetric(float64(r.FragOK), "frag-ok")
		b.ReportMetric(float64(r.RSOK), "rs-ok")
	}
}

// BenchmarkReplicationVsRS quantifies the section 3.6 trade-off: the
// storage overhead and encode/decode cost of Reed-Solomon coding versus
// whole-file k-replication for equal failure tolerance (m=4 losses).
func BenchmarkReplicationVsRS(b *testing.B) {
	r := stats.NewRand(benchSeed)
	file := make([]byte, 1<<20)
	r.Read(file)

	b.Run("replication-k5", func(b *testing.B) {
		b.SetBytes(int64(len(file)))
		b.ReportMetric(5.0, "storage-x")
		for i := 0; i < b.N; i++ {
			for rep := 0; rep < 5; rep++ {
				dst := make([]byte, len(file))
				copy(dst, file)
			}
		}
	})
	b.Run("rs-8+4", func(b *testing.B) {
		enc, err := rs.New(8, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(file)))
		b.ReportMetric(12.0/8.0, "storage-x")
		for i := 0; i < b.N; i++ {
			shards, err := enc.Split(file)
			if err != nil {
				b.Fatal(err)
			}
			if err := enc.Encode(shards); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchName(prefix string, v int) string {
	return fmt.Sprintf("%s=%d", prefix, v)
}

// --- Durable storage engine benchmarks (issue 4) ---
//
// The log-structured store batches every mutation into one WAL append
// (plus one segment append when content is present), where DiskStore
// re-snapshots its entire metadata table per mutation. These benches
// quantify the gap at 10k resident objects, and the recovery bench
// measures checkpoint+replay time for the same population.

const benchObjSize = 1024

func benchFid(n uint64) id.File { return id.NewFile("bench", nil, n) }

func benchContent(n uint64) []byte {
	r := rand.New(rand.NewSource(int64(n)))
	b := make([]byte, benchObjSize)
	r.Read(b)
	return b
}

// seedBackend fills a backend with resident objects so the per-op cost
// is measured against a realistic table size. DiskStore is seeded via
// its bulk-load path: its Add snapshots the whole metadata table per
// call, which would make n-object seeding O(n^2).
func seedBackend(b *testing.B, s store.Backend, resident int) {
	b.Helper()
	entries := make([]store.Entry, resident)
	for i := range entries {
		entries[i] = store.Entry{File: benchFid(uint64(i)), Size: benchObjSize, Content: benchContent(uint64(i))}
	}
	if d, ok := s.(*store.DiskStore); ok {
		if err := d.AddBatch(entries); err != nil {
			b.Fatal(err)
		}
		return
	}
	for _, e := range entries {
		if err := s.Add(e); err != nil {
			b.Fatal(err)
		}
	}
}

func benchLogstoreOpts(sync logstore.SyncPolicy) logstore.Options {
	return logstore.Options{Capacity: 1 << 40, Sync: sync, CheckpointBytes: -1, CompactRatio: -1}
}

// BenchmarkLogstoreAdd measures Add with 10k resident objects under the
// OS-buffered policy (the apples-to-apples comparison with DiskStore,
// which never fsyncs), plus a SyncAlways variant to price group commit.
func BenchmarkLogstoreAdd(b *testing.B) {
	for _, policy := range []logstore.SyncPolicy{logstore.SyncNever, logstore.SyncAlways} {
		b.Run("sync="+policy.String(), func(b *testing.B) {
			s, err := logstore.Open(b.TempDir(), benchLogstoreOpts(policy))
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			seedBackend(b, s, 10_000)
			content := benchContent(1 << 40)
			b.SetBytes(benchObjSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := store.Entry{File: benchFid(uint64(100_000 + i)), Size: benchObjSize, Content: content}
				if err := s.Add(e); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer() // keep the deferred Close (checkpoint) out of the measurement
		})
	}
}

// BenchmarkDiskStoreAdd is the baseline: snapshot-per-mutation.
func BenchmarkDiskStoreAdd(b *testing.B) {
	d, err := store.OpenDisk(b.TempDir(), 1<<40)
	if err != nil {
		b.Fatal(err)
	}
	seedBackend(b, d, 10_000)
	content := benchContent(1 << 40)
	b.SetBytes(benchObjSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := store.Entry{File: benchFid(uint64(100_000 + i)), Size: benchObjSize, Content: content}
		if err := d.Add(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogstoreGet reads random resident objects (content CRC
// verified on every read).
func BenchmarkLogstoreGet(b *testing.B) {
	s, err := logstore.Open(b.TempDir(), benchLogstoreOpts(logstore.SyncNever))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	seedBackend(b, s, 10_000)
	b.SetBytes(benchObjSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, ok := s.Get(benchFid(uint64(i % 10_000)))
		if !ok || e.Content == nil {
			b.Fatal("miss")
		}
	}
	b.StopTimer() // keep the deferred Close (checkpoint) out of the measurement
}

// BenchmarkDiskStoreGet is the baseline read path (one file per object).
func BenchmarkDiskStoreGet(b *testing.B) {
	d, err := store.OpenDisk(b.TempDir(), 1<<40)
	if err != nil {
		b.Fatal(err)
	}
	seedBackend(b, d, 10_000)
	b.SetBytes(benchObjSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, ok := d.Get(benchFid(uint64(i % 10_000)))
		if !ok || e.Content == nil {
			b.Fatal("miss")
		}
	}
}

// BenchmarkLogstoreRecovery measures a full open (checkpoint load + WAL
// replay + segment scan) of a 10k-object store.
func BenchmarkLogstoreRecovery(b *testing.B) {
	dir := b.TempDir()
	s, err := logstore.Open(dir, benchLogstoreOpts(logstore.SyncNever))
	if err != nil {
		b.Fatal(err)
	}
	seedBackend(b, s, 10_000)
	if err := s.Sync(); err != nil {
		b.Fatal(err)
	}
	s.Kill() // recovery must replay the whole WAL (no checkpoint)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, err := logstore.Open(dir, benchLogstoreOpts(logstore.SyncNever))
		if err != nil {
			b.Fatal(err)
		}
		if s2.Len() != 10_000 {
			b.Fatalf("recovered %d objects", s2.Len())
		}
		b.StopTimer()
		s2.Kill()
		b.StartTimer()
	}
}

// BenchmarkDiskStoreRecovery is the baseline restart (gob snapshot
// load; object files stay on disk).
func BenchmarkDiskStoreRecovery(b *testing.B) {
	dir := b.TempDir()
	d, err := store.OpenDisk(dir, 1<<40)
	if err != nil {
		b.Fatal(err)
	}
	seedBackend(b, d, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d2, err := store.OpenDisk(dir, 1<<40)
		if err != nil {
			b.Fatal(err)
		}
		if d2.Len() != 10_000 {
			b.Fatalf("recovered %d objects", d2.Len())
		}
	}
}
