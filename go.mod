module past

go 1.23
